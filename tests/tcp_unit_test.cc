#include <gtest/gtest.h>

#include "tcp/congestion_control.h"
#include "tcp/cubic.h"
#include "tcp/receive_tracker.h"
#include "tcp/reno.h"
#include "tcp/rtt_estimator.h"
#include "tcp/segment.h"

namespace riptide::tcp {
namespace {

using sim::Time;

// ---------------------------------------------------------------- Segment

TEST(SegmentTest, SequenceSpanCountsSynFinAndPayload) {
  Segment s;
  EXPECT_EQ(s.sequence_span(), 0u);
  s.syn = true;
  EXPECT_EQ(s.sequence_span(), 1u);
  s.payload_bytes = 100;
  EXPECT_EQ(s.sequence_span(), 101u);
  s.fin = true;
  EXPECT_EQ(s.sequence_span(), 102u);
  s.seq = 10;
  EXPECT_EQ(s.seq_end(), 112u);
}

TEST(SegmentTest, FlagsString) {
  Segment s;
  EXPECT_EQ(s.flags_string(), ".");
  s.syn = true;
  s.ack_flag = true;
  EXPECT_EQ(s.flags_string(), "SA");
}

// ----------------------------------------------------------- RttEstimator

RttEstimator make_estimator() {
  return RttEstimator(Time::seconds(1), Time::milliseconds(200),
                      Time::seconds(120));
}

TEST(RttEstimatorTest, InitialRtoBeforeSamples) {
  auto est = make_estimator();
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), Time::seconds(1));
}

TEST(RttEstimatorTest, FirstSampleSeedsSrttAndVar) {
  auto est = make_estimator();
  est.add_sample(Time::milliseconds(100));
  EXPECT_EQ(est.srtt(), Time::milliseconds(100));
  EXPECT_EQ(est.rttvar(), Time::milliseconds(50));
  // RTO = srtt + 4*rttvar = 300 ms
  EXPECT_EQ(est.rto(), Time::milliseconds(300));
}

TEST(RttEstimatorTest, SmoothingFollowsRfc6298) {
  auto est = make_estimator();
  est.add_sample(Time::milliseconds(100));
  est.add_sample(Time::milliseconds(200));
  // srtt = 7/8*100 + 1/8*200 = 112.5ms; rttvar = 3/4*50 + 1/4*100 = 62.5ms
  EXPECT_EQ(est.srtt(), Time::microseconds(112500));
  EXPECT_EQ(est.rttvar(), Time::microseconds(62500));
}

TEST(RttEstimatorTest, RtoClampedToMinimum) {
  auto est = make_estimator();
  est.add_sample(Time::milliseconds(10));
  // 10 + 4*5 = 30 ms < min 200 ms
  EXPECT_EQ(est.rto(), Time::milliseconds(200));
}

TEST(RttEstimatorTest, BackoffDoublesRto) {
  auto est = make_estimator();
  est.add_sample(Time::milliseconds(100));
  est.on_timeout();
  EXPECT_EQ(est.rto(), Time::milliseconds(600));
  est.on_timeout();
  EXPECT_EQ(est.rto(), Time::milliseconds(1200));
}

TEST(RttEstimatorTest, FreshSampleResetsBackoff) {
  auto est = make_estimator();
  est.add_sample(Time::milliseconds(100));
  est.on_timeout();
  est.add_sample(Time::milliseconds(100));
  EXPECT_EQ(est.backoff_count(), 0u);
  EXPECT_LT(est.rto(), Time::milliseconds(600));
}

TEST(RttEstimatorTest, RtoCappedAtMaximum) {
  auto est = make_estimator();
  est.add_sample(Time::seconds(10));
  for (int i = 0; i < 20; ++i) est.on_timeout();
  EXPECT_EQ(est.rto(), Time::seconds(120));
}

// --------------------------------------------------------- ReceiveTracker

TEST(ReceiveTrackerTest, InOrderDeliveryAdvances) {
  ReceiveTracker t(0);
  EXPECT_EQ(t.on_segment(0, 100), 100u);
  EXPECT_EQ(t.rcv_nxt(), 100u);
  EXPECT_EQ(t.on_segment(100, 250), 150u);
  EXPECT_EQ(t.rcv_nxt(), 250u);
}

TEST(ReceiveTrackerTest, OutOfOrderHeldUntilGapFills) {
  ReceiveTracker t(0);
  EXPECT_EQ(t.on_segment(100, 200), 0u);
  EXPECT_TRUE(t.has_out_of_order());
  EXPECT_EQ(t.out_of_order_bytes(), 100u);
  EXPECT_EQ(t.on_segment(0, 100), 200u);  // delivers both chunks
  EXPECT_EQ(t.rcv_nxt(), 200u);
  EXPECT_FALSE(t.has_out_of_order());
}

TEST(ReceiveTrackerTest, DuplicateSegmentsDeliverNothing) {
  ReceiveTracker t(0);
  t.on_segment(0, 100);
  EXPECT_EQ(t.on_segment(0, 100), 0u);
  EXPECT_EQ(t.on_segment(50, 80), 0u);
  EXPECT_TRUE(t.is_duplicate(0, 100));
  EXPECT_TRUE(t.is_duplicate(20, 60));
}

TEST(ReceiveTrackerTest, PartialOverlapDeliversOnlyNewBytes) {
  ReceiveTracker t(0);
  t.on_segment(0, 100);
  EXPECT_EQ(t.on_segment(50, 150), 50u);
  EXPECT_EQ(t.rcv_nxt(), 150u);
}

TEST(ReceiveTrackerTest, MergesAdjacentOutOfOrderIntervals) {
  ReceiveTracker t(0);
  t.on_segment(100, 200);
  t.on_segment(300, 400);
  EXPECT_EQ(t.out_of_order_intervals(), 2u);
  t.on_segment(200, 300);  // bridges the two
  EXPECT_EQ(t.out_of_order_intervals(), 1u);
  EXPECT_EQ(t.out_of_order_bytes(), 300u);
  EXPECT_EQ(t.on_segment(0, 100), 400u);
}

TEST(ReceiveTrackerTest, OverlappingOutOfOrderMerges) {
  ReceiveTracker t(0);
  t.on_segment(100, 250);
  t.on_segment(200, 300);
  EXPECT_EQ(t.out_of_order_intervals(), 1u);
  EXPECT_EQ(t.out_of_order_bytes(), 200u);
}

TEST(ReceiveTrackerTest, NonZeroInitialSequence) {
  ReceiveTracker t(1);
  EXPECT_EQ(t.on_segment(1, 50), 49u);
  EXPECT_EQ(t.rcv_nxt(), 50u);
}

TEST(ReceiveTrackerTest, EmptyAndInvertedRangesAreNoops) {
  ReceiveTracker t(0);
  EXPECT_EQ(t.on_segment(10, 10), 0u);
  EXPECT_EQ(t.on_segment(20, 10), 0u);
  EXPECT_FALSE(t.has_out_of_order());
  EXPECT_TRUE(t.is_duplicate(10, 10));
}

TEST(ReceiveTrackerTest, IsDuplicateWithOutOfOrderCoverage) {
  ReceiveTracker t(0);
  t.on_segment(100, 200);
  EXPECT_TRUE(t.is_duplicate(100, 200));
  EXPECT_TRUE(t.is_duplicate(120, 180));
  EXPECT_FALSE(t.is_duplicate(100, 250));
  EXPECT_FALSE(t.is_duplicate(0, 50));
}

// ------------------------------------------------------------------ Reno

constexpr std::uint32_t kMss = 1000;

AckEvent ack_event(std::uint64_t bytes, std::uint64_t in_flight = 10000,
                   Time now = Time::seconds(1)) {
  return AckEvent{now, bytes, in_flight, std::nullopt};
}

TEST(NewRenoTest, StartsAtInitialWindow) {
  NewReno cc(kMss, 10 * kMss);
  EXPECT_EQ(cc.cwnd_bytes(), 10u * kMss);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(NewRenoTest, SlowStartGrowsByBytesAcked) {
  NewReno cc(kMss, 10 * kMss);
  cc.on_ack(ack_event(kMss));
  EXPECT_EQ(cc.cwnd_bytes(), 11u * kMss);
}

TEST(NewRenoTest, SlowStartAbcCapsAtTwoMssPerAck) {
  NewReno cc(kMss, 10 * kMss);
  cc.on_ack(ack_event(5 * kMss));
  EXPECT_EQ(cc.cwnd_bytes(), 12u * kMss);
}

TEST(NewRenoTest, SlowStartDoublesPerRoundTrip) {
  NewReno cc(kMss, 10 * kMss);
  // One round trip: 10 segments acked one by one.
  for (int i = 0; i < 10; ++i) cc.on_ack(ack_event(kMss));
  EXPECT_EQ(cc.cwnd_bytes(), 20u * kMss);
}

TEST(NewRenoTest, CongestionAvoidanceAddsOneMssPerWindow) {
  NewReno cc(kMss, 10 * kMss);
  cc.on_enter_recovery(Time::seconds(1), 20 * kMss);  // ssthresh = 10 MSS
  cc.on_exit_recovery(Time::seconds(2));
  EXPECT_EQ(cc.cwnd_bytes(), 10u * kMss);
  EXPECT_FALSE(cc.in_slow_start());
  // One full window of ACKs grows cwnd by one MSS.
  for (int i = 0; i < 10; ++i) cc.on_ack(ack_event(kMss));
  EXPECT_EQ(cc.cwnd_bytes(), 11u * kMss);
}

TEST(NewRenoTest, RecoveryHalvesToFlightBasedSsthresh) {
  NewReno cc(kMss, 10 * kMss);
  cc.on_enter_recovery(Time::seconds(1), 16 * kMss);
  EXPECT_EQ(cc.ssthresh_bytes(), 8u * kMss);
  EXPECT_EQ(cc.cwnd_bytes(), 8u * kMss);
}

TEST(NewRenoTest, SsthreshFloorsAtTwoMss) {
  NewReno cc(kMss, 10 * kMss);
  cc.on_enter_recovery(Time::seconds(1), 2 * kMss);
  EXPECT_EQ(cc.ssthresh_bytes(), 2u * kMss);
}

TEST(NewRenoTest, WindowFrozenDuringRecovery) {
  NewReno cc(kMss, 10 * kMss);
  cc.on_enter_recovery(Time::seconds(1), 20 * kMss);
  const auto during = cc.cwnd_bytes();
  cc.on_ack(ack_event(kMss));
  EXPECT_EQ(cc.cwnd_bytes(), during);
}

TEST(NewRenoTest, TimeoutCollapsesToOneMss) {
  NewReno cc(kMss, 10 * kMss);
  cc.on_timeout(Time::seconds(1), 20 * kMss);
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
  EXPECT_EQ(cc.ssthresh_bytes(), 10u * kMss);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(NewRenoTest, RestartAfterIdleReturnsToInitialWindow) {
  NewReno cc(kMss, 10 * kMss);
  for (int i = 0; i < 30; ++i) cc.on_ack(ack_event(kMss));
  EXPECT_GT(cc.cwnd_bytes(), 10u * kMss);
  cc.on_restart_after_idle();
  EXPECT_EQ(cc.cwnd_bytes(), 10u * kMss);
}

TEST(NewRenoTest, RestartAfterIdleNeverGrowsWindow) {
  NewReno cc(kMss, 10 * kMss);
  cc.on_timeout(Time::seconds(1), 10 * kMss);  // cwnd = 1 MSS
  cc.on_restart_after_idle();
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
}

// A Riptide-sized initial window behaves identically: the window is just a
// parameter (this is the property Riptide relies on).
TEST(NewRenoTest, LargeInitialWindowSlowStartsFromThere) {
  NewReno cc(kMss, 100 * kMss);
  EXPECT_EQ(cc.cwnd_bytes(), 100u * kMss);
  cc.on_ack(ack_event(kMss));
  EXPECT_EQ(cc.cwnd_bytes(), 101u * kMss);
}

// ----------------------------------------------------------------- Cubic

TEST(CubicTest, StartsAtInitialWindowInSlowStart) {
  Cubic cc(kMss, 10 * kMss);
  EXPECT_EQ(cc.cwnd_bytes(), 10u * kMss);
  EXPECT_TRUE(cc.in_slow_start());
  EXPECT_STREQ(cc.name(), "cubic");
}

TEST(CubicTest, SlowStartGrowsByBytesAcked) {
  Cubic cc(kMss, 10 * kMss);
  cc.on_ack(ack_event(kMss));
  EXPECT_EQ(cc.cwnd_bytes(), 11u * kMss);
}

TEST(CubicTest, MultiplicativeDecreaseUsesBeta) {
  Cubic cc(kMss, 10 * kMss);
  cc.on_enter_recovery(Time::seconds(1), 20 * kMss);
  // ssthresh = 0.7 * 20 MSS = 14 MSS
  EXPECT_EQ(cc.ssthresh_bytes(), 14u * kMss);
  EXPECT_EQ(cc.cwnd_bytes(), 14u * kMss);
}

TEST(CubicTest, TimeoutCollapsesToOneMss) {
  Cubic cc(kMss, 10 * kMss);
  cc.on_timeout(Time::seconds(1), 20 * kMss);
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
}

TEST(CubicTest, GrowsInCongestionAvoidanceOverTime) {
  Cubic cc(kMss, 10 * kMss);
  cc.on_enter_recovery(Time::seconds(1), 20 * kMss);
  cc.on_exit_recovery(Time::seconds(1));
  const auto after_decrease = cc.cwnd_bytes();
  // Feed ACKs over simulated seconds: the cubic curve must climb back
  // toward and past w_max.
  Time now = Time::seconds(1);
  for (int i = 0; i < 2000; ++i) {
    now += Time::milliseconds(10);
    cc.on_ack(AckEvent{now, kMss, 10 * kMss, Time::milliseconds(100)});
  }
  EXPECT_GT(cc.cwnd_bytes(), after_decrease);
  EXPECT_GT(cc.cwnd_bytes(), 20u * kMss);  // past the old w_max
}

TEST(CubicTest, PlateausNearWmax) {
  Cubic cc(kMss, 10 * kMss);
  cc.on_enter_recovery(Time::seconds(1), 40 * kMss);
  cc.on_exit_recovery(Time::seconds(1));
  // Shortly after the decrease the window should still be below the old
  // w_max (the concave approach), not jump over it instantly.
  Time now = Time::seconds(1);
  for (int i = 0; i < 5; ++i) {
    now += Time::milliseconds(10);
    cc.on_ack(AckEvent{now, kMss, 10 * kMss, Time::milliseconds(100)});
  }
  EXPECT_LT(cc.cwnd_bytes(), 40u * kMss);
}

TEST(CubicTest, FastConvergenceLowersWmaxOnBackToBackLosses) {
  Cubic cc(kMss, 10 * kMss);
  cc.on_enter_recovery(Time::seconds(1), 40 * kMss);   // w_max = 10
  cc.on_exit_recovery(Time::seconds(1));
  const auto first = cc.ssthresh_bytes();
  cc.on_enter_recovery(Time::seconds(2), cc.cwnd_bytes());
  // Second loss below the previous w_max: ssthresh must shrink further.
  EXPECT_LT(cc.ssthresh_bytes(), first);
}

TEST(CubicTest, RestartAfterIdleReturnsToInitialWindow) {
  Cubic cc(kMss, 10 * kMss);
  for (int i = 0; i < 50; ++i) cc.on_ack(ack_event(kMss));
  cc.on_restart_after_idle();
  EXPECT_EQ(cc.cwnd_bytes(), 10u * kMss);
}

TEST(CubicTest, WindowFrozenDuringRecovery) {
  Cubic cc(kMss, 10 * kMss);
  cc.on_enter_recovery(Time::seconds(1), 20 * kMss);
  const auto during = cc.cwnd_bytes();
  cc.on_ack(ack_event(kMss));
  EXPECT_EQ(cc.cwnd_bytes(), during);
}

// --------------------------------------------------------------- factory

TEST(CongestionControlFactoryTest, SelectsAlgorithm) {
  TcpConfig config;
  config.congestion_control = CcAlgorithm::kNewReno;
  auto reno = make_congestion_control(config, 10 * config.mss);
  EXPECT_STREQ(reno->name(), "newreno");
  config.congestion_control = CcAlgorithm::kCubic;
  auto cubic = make_congestion_control(config, 10 * config.mss);
  EXPECT_STREQ(cubic->name(), "cubic");
}

TEST(CongestionControlFactoryTest, AppliesInitialWindow) {
  TcpConfig config;
  auto cc = make_congestion_control(config, 77 * config.mss);
  EXPECT_EQ(cc->cwnd_bytes(), 77u * config.mss);
}

}  // namespace
}  // namespace riptide::tcp

#include <gtest/gtest.h>

#include "cdn/experiment.h"
#include "cdn/file_size_dist.h"
#include "cdn/geo.h"
#include "cdn/metrics.h"
#include "cdn/pops.h"
#include "cdn/probe.h"
#include "cdn/topology.h"
#include "stats/cdf.h"

namespace riptide::cdn {
namespace {

using sim::Time;

// -------------------------------------------------------------------- geo

TEST(GeoTest, HaversineKnownDistances) {
  const GeoPoint london{51.51, -0.13};
  const GeoPoint nyc{40.71, -74.01};
  const GeoPoint sydney{-33.87, 151.21};
  // London-NYC great circle is ~5570 km.
  EXPECT_NEAR(haversine_km(london, nyc), 5570.0, 100.0);
  // London-Sydney ~17000 km.
  EXPECT_NEAR(haversine_km(london, sydney), 16990.0, 300.0);
}

TEST(GeoTest, ZeroDistanceForSamePoint) {
  const GeoPoint p{48.86, 2.35};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
  EXPECT_EQ(propagation_delay(p, p), Time::zero());
}

TEST(GeoTest, PropagationDelayMatchesFibreSpeed) {
  const GeoPoint london{51.51, -0.13};
  const GeoPoint nyc{40.71, -74.01};
  // ~5570 km * 1.4 inflation / 200,000 km/s  ->  ~39 ms one way.
  const auto delay = propagation_delay(london, nyc);
  EXPECT_NEAR(delay.to_milliseconds(), 39.0, 3.0);
  // Inflation factor 1.0 is proportionally faster.
  const auto direct = propagation_delay(london, nyc, 1.0);
  EXPECT_NEAR(direct.to_milliseconds() * 1.4, delay.to_milliseconds(), 0.5);
}

TEST(GeoTest, DelayIsSymmetric) {
  const GeoPoint a{35.68, 139.69};
  const GeoPoint b{-23.55, -46.63};
  EXPECT_EQ(propagation_delay(a, b), propagation_delay(b, a));
}

// ------------------------------------------------------------------- pops

TEST(PopsTest, TableTwoContinentCounts) {
  const auto& specs = default_pop_specs();
  EXPECT_EQ(specs.size(), 34u);  // the paper's 34 PoPs
  const auto summary = continent_summary(specs);
  std::map<Continent, int> counts(summary.begin(), summary.end());
  EXPECT_EQ(counts[Continent::kEurope], 10);
  EXPECT_EQ(counts[Continent::kNorthAmerica], 11);
  EXPECT_EQ(counts[Continent::kSouthAmerica], 1);
  EXPECT_EQ(counts[Continent::kAsia], 9);
  EXPECT_EQ(counts[Continent::kOceania], 3);
}

TEST(PopsTest, NamesUnique) {
  const auto& specs = default_pop_specs();
  std::set<std::string> names;
  for (const auto& spec : specs) names.insert(spec.name);
  EXPECT_EQ(names.size(), specs.size());
}

TEST(PopsTest, ContinentNames) {
  EXPECT_STREQ(to_string(Continent::kEurope), "Europe");
  EXPECT_STREQ(to_string(Continent::kOceania), "Oceania");
}

// ---------------------------------------------------- FileSizeDistribution

TEST(FileSizeDistTest, CalibratedMassAbove15KB) {
  // Fig 2's headline statistic: 54% of files exceed the 15 KB that fit in
  // the default initial window.
  FileSizeDistribution dist;
  EXPECT_NEAR(dist.fraction_above(15'000.0), 0.54, 0.03);
}

TEST(FileSizeDistTest, LargeFilesDoNotDominate) {
  FileSizeDistribution dist;
  EXPECT_LT(dist.fraction_above(1'000'000.0), 0.10);
  EXPECT_GT(dist.fraction_above(1'000'000.0), 0.005);
}

TEST(FileSizeDistTest, CdfIsMonotoneAndBounded) {
  FileSizeDistribution dist;
  double prev = 0.0;
  for (double b : {100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}) {
    const double c = dist.cdf(b);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf(-5.0), 0.0);
}

TEST(FileSizeDistTest, SamplesMatchAnalyticCdf) {
  FileSizeDistribution dist;
  sim::Rng rng(7);
  const int n = 50'000;
  int above_15k = 0;
  for (int i = 0; i < n; ++i) {
    if (dist.sample(rng) > 15'000) ++above_15k;
  }
  EXPECT_NEAR(static_cast<double>(above_15k) / n,
              dist.fraction_above(15'000.0), 0.01);
}

TEST(FileSizeDistTest, SamplesRespectClamp) {
  FileSizeDistribution::Params p;
  p.min_bytes = 500;
  p.max_bytes = 1'000'000;
  FileSizeDistribution dist(p);
  sim::Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const auto s = dist.sample(rng);
    EXPECT_GE(s, 500u);
    EXPECT_LE(s, 1'000'000u);
  }
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, RttBuckets) {
  EXPECT_EQ(bucket_for(10.0), RttBucket::kClose);
  EXPECT_EQ(bucket_for(49.9), RttBucket::kClose);
  EXPECT_EQ(bucket_for(50.0), RttBucket::kMedium);
  EXPECT_EQ(bucket_for(99.9), RttBucket::kMedium);
  EXPECT_EQ(bucket_for(100.0), RttBucket::kFar);
  EXPECT_EQ(bucket_for(150.0), RttBucket::kVeryFar);
  EXPECT_STREQ(to_string(RttBucket::kVeryFar), ">150ms");
}

TEST(MetricsTest, CompletionCdfFiltering) {
  MetricsCollector metrics;
  metrics.record_flow({0, 1, 50'000, Time::zero(), Time::milliseconds(100),
                       true, 80.0});
  metrics.record_flow({0, 2, 50'000, Time::zero(), Time::milliseconds(300),
                       false, 120.0});
  metrics.record_flow({1, 2, 10'000, Time::zero(), Time::milliseconds(50),
                       true, 120.0});

  const auto all_50k = metrics.completion_cdf(
      [](const FlowRecord& f) { return f.object_bytes == 50'000; });
  EXPECT_EQ(all_50k.count(), 2u);

  const auto fresh_only =
      metrics.completion_cdf([](const FlowRecord& f) { return f.fresh; });
  EXPECT_EQ(fresh_only.count(), 2u);
  EXPECT_DOUBLE_EQ(fresh_only.max(), 100.0);
}

TEST(MetricsTest, CwndCdfPerPop) {
  MetricsCollector metrics;
  metrics.record_cwnd({0, 10, Time::zero()});
  metrics.record_cwnd({0, 20, Time::zero()});
  metrics.record_cwnd({1, 90, Time::zero()});
  EXPECT_EQ(metrics.cwnd_cdf(0).count(), 2u);
  EXPECT_EQ(metrics.cwnd_cdf(1).count(), 1u);
  EXPECT_EQ(metrics.cwnd_cdf(-1).count(), 3u);
  EXPECT_DOUBLE_EQ(metrics.cwnd_cdf(0).max(), 20.0);
}

// --------------------------------------------------------------- topology

TopologyConfig small_topology_config() {
  TopologyConfig config;
  config.hosts_per_pop = 2;
  return config;
}

std::vector<PopSpec> small_specs() {
  return {{"lon", Continent::kEurope, {51.51, -0.13}},
          {"nyc", Continent::kNorthAmerica, {40.71, -74.01}},
          {"tyo", Continent::kAsia, {35.68, 139.69}}};
}

TEST(TopologyTest, BuildsPopsWithPrefixesAndHosts) {
  sim::Simulator sim;
  Topology topo(sim, small_topology_config(), small_specs());
  ASSERT_EQ(topo.pop_count(), 3u);
  EXPECT_EQ(topo.pops()[0].prefix, net::Prefix::parse("10.0.0.0/16"));
  EXPECT_EQ(topo.pops()[1].prefix, net::Prefix::parse("10.1.0.0/16"));
  EXPECT_EQ(topo.pops()[0].hosts.size(), 2u);
  EXPECT_EQ(topo.host(1, 0).address(), net::Ipv4Address(10, 1, 0, 1));
  EXPECT_EQ(topo.all_hosts().size(), 6u);
}

TEST(TopologyTest, PopOfResolvesAddresses) {
  sim::Simulator sim;
  Topology topo(sim, small_topology_config(), small_specs());
  EXPECT_EQ(topo.pop_of(net::Ipv4Address(10, 2, 0, 1)), 2);
  EXPECT_EQ(topo.pop_of(net::Ipv4Address(10, 1, 0, 2)), 1);
  EXPECT_EQ(topo.pop_of(net::Ipv4Address(192, 168, 0, 1)), -1);
}

TEST(TopologyTest, BaseRttSymmetricAndGeoPlausible) {
  sim::Simulator sim;
  Topology topo(sim, small_topology_config(), small_specs());
  EXPECT_EQ(topo.base_rtt(0, 1), topo.base_rtt(1, 0));
  // London-NYC: ~78 ms RTT at 1.4 inflation.
  EXPECT_NEAR(topo.base_rtt(0, 1).to_milliseconds(), 78.0, 8.0);
  // London-Tokyo much farther than London-NYC.
  EXPECT_GT(topo.base_rtt(0, 2), topo.base_rtt(0, 1) * 15 / 10);
}

TEST(TopologyTest, EndToEndTransferAcrossWan) {
  sim::Simulator sim;
  auto config = small_topology_config();
  config.wan_loss_probability = 0.0;
  Topology topo(sim, config, small_specs());

  std::uint64_t received = 0;
  topo.host(1, 0).listen(80, [&](tcp::TcpConnection& conn) {
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_data = [&](std::uint64_t bytes) { received += bytes; };
    conn.set_callbacks(std::move(cbs));
  });
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = topo.host(0, 0).connect(topo.host(1, 0).address(), 80,
                                       std::move(cbs));
  sim.run_until(Time::milliseconds(200));
  ASSERT_TRUE(conn.established());
  conn.send(30'000);
  sim.run_until(Time::seconds(5));
  EXPECT_EQ(received, 30'000u);
}

TEST(TopologyTest, CrossPopRttMatchesBaseRtt) {
  sim::Simulator sim;
  auto config = small_topology_config();
  config.wan_loss_probability = 0.0;
  Topology topo(sim, config, small_specs());
  bool closed = false;
  tcp::TcpConnection::Callbacks cbs;
  cbs.on_closed = [&closed](bool) { closed = true; };
  topo.host(0, 0).connect(topo.host(2, 0).address(), 9999, std::move(cbs));
  // RST from the far host comes back after ~1 base RTT; the host then
  // destroys the connection object, so observe closure via the callback.
  sim.run_until(Time::seconds(2));
  EXPECT_TRUE(closed);
}

TEST(TopologyTest, WanLinkAccessorsAndValidation) {
  sim::Simulator sim;
  Topology topo(sim, small_topology_config(), small_specs());
  EXPECT_NO_THROW(topo.wan_link(0, 1));
  EXPECT_THROW(topo.wan_link(1, 1), std::invalid_argument);
  const auto& link = topo.wan_link(0, 2);
  EXPECT_NEAR(link.config().propagation_delay.to_milliseconds(),
              topo.base_rtt(0, 2).to_milliseconds() / 2.0, 1.0);
}

TEST(TopologyTest, RejectsBadConfig) {
  sim::Simulator sim;
  EXPECT_THROW(Topology(sim, small_topology_config(), {}),
               std::invalid_argument);
  auto config = small_topology_config();
  config.hosts_per_pop = 0;
  EXPECT_THROW(Topology(sim, config, small_specs()), std::invalid_argument);
}

TEST(TopologyTest, FullPaperTopologyRttDistribution) {
  // Fig 5: over the 34-PoP mesh, the median inter-PoP RTT exceeds 125 ms.
  sim::Simulator sim;
  Topology topo(sim, TopologyConfig{});
  stats::Cdf rtts;
  for (std::size_t a = 0; a < topo.pop_count(); ++a) {
    for (std::size_t b = a + 1; b < topo.pop_count(); ++b) {
      rtts.add(topo.base_rtt(a, b).to_milliseconds());
    }
  }
  EXPECT_GT(rtts.percentile(50), 100.0);
  EXPECT_LT(rtts.percentile(50), 250.0);
  EXPECT_GT(rtts.max(), 250.0);
}

// ---------------------------------------------------------- probe helpers

TEST(ProbeSpecTest, DefaultSpecsMatchPaper) {
  const auto specs = default_probe_specs();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].object_bytes, 10'000u);
  EXPECT_EQ(specs[1].object_bytes, 50'000u);
  EXPECT_EQ(specs[2].object_bytes, 100'000u);
}

TEST(PercentileGainTest, ComputesRelativeImprovement) {
  stats::Cdf baseline;
  stats::Cdf treatment;
  for (int i = 1; i <= 100; ++i) {
    baseline.add(i * 2.0);
    treatment.add(i * 1.0);  // uniformly 2x faster
  }
  const auto gains = percentile_gains(baseline, treatment, 25.0);
  ASSERT_EQ(gains.size(), 3u);  // 25, 50, 75
  for (const auto& g : gains) {
    EXPECT_NEAR(g.gain_fraction, 0.5, 0.02);
  }
}

TEST(PercentileGainTest, EmptyInputsYieldNothing) {
  stats::Cdf empty;
  stats::Cdf some;
  some.add(1.0);
  EXPECT_TRUE(percentile_gains(empty, some).empty());
  EXPECT_TRUE(percentile_gains(some, empty).empty());
}

}  // namespace
}  // namespace riptide::cdn

#include <gtest/gtest.h>

#include "model/transfer_model.h"

namespace riptide::model {
namespace {

using sim::Time;

ModelParams params(std::uint32_t iw, std::uint32_t mss = 1460) {
  return ModelParams{mss, iw};
}

TEST(TransferModelTest, ZeroBytesTakeZeroRtts) {
  EXPECT_EQ(rtts_for_transfer(0, params(10)), 0u);
}

TEST(TransferModelTest, OneSegmentTakesOneRtt) {
  EXPECT_EQ(rtts_for_transfer(1, params(10)), 1u);
  EXPECT_EQ(rtts_for_transfer(1460, params(10)), 1u);
}

TEST(TransferModelTest, DefaultWindowBoundaryAt15KB) {
  // The paper's headline: IW10 carries ~15 KB (10 * 1460 = 14,600 B) in the
  // first round trip; anything bigger pays at least one more RTT.
  EXPECT_EQ(rtts_for_transfer(14'600, params(10)), 1u);
  EXPECT_EQ(rtts_for_transfer(14'601, params(10)), 2u);
  EXPECT_EQ(rtts_for_transfer(15'000, params(10)), 2u);
}

TEST(TransferModelTest, SlowStartDoublingSchedule) {
  // IW10: cumulative segments per RTT are 10, 30, 70, 150, ...
  EXPECT_EQ(rtts_for_transfer(30 * 1460, params(10)), 2u);
  EXPECT_EQ(rtts_for_transfer(30 * 1460 + 1, params(10)), 3u);
  EXPECT_EQ(rtts_for_transfer(70 * 1460, params(10)), 3u);
  EXPECT_EQ(rtts_for_transfer(150 * 1460, params(10)), 4u);
}

TEST(TransferModelTest, PaperProbeSizes) {
  // The probe sizes of §IV-A: 10 KB fits IW10; 50 KB needs 3 RTTs at IW10
  // but 1 at IW50; 100 KB needs 4 at IW10 but 1 at IW100.
  EXPECT_EQ(rtts_for_transfer(10'000, params(10)), 1u);
  EXPECT_EQ(rtts_for_transfer(50'000, params(10)), 3u);
  EXPECT_EQ(rtts_for_transfer(50'000, params(50)), 1u);
  EXPECT_EQ(rtts_for_transfer(100'000, params(10)), 3u);  // 69 segs <= 70
  EXPECT_EQ(rtts_for_transfer(100'000, params(100)), 1u);
}

TEST(TransferModelTest, MaxBytesInRttsIsGeometric) {
  EXPECT_EQ(max_bytes_in_rtts(0, params(10)), 0u);
  EXPECT_EQ(max_bytes_in_rtts(1, params(10)), 10u * 1460);
  EXPECT_EQ(max_bytes_in_rtts(2, params(10)), 30u * 1460);
  EXPECT_EQ(max_bytes_in_rtts(3, params(10)), 70u * 1460);
}

TEST(TransferModelTest, MaxBytesInverseOfRttsNeeded) {
  for (std::uint32_t rtts = 1; rtts <= 8; ++rtts) {
    const auto cap = max_bytes_in_rtts(rtts, params(10));
    EXPECT_EQ(rtts_for_transfer(cap, params(10)), rtts);
    EXPECT_EQ(rtts_for_transfer(cap + 1, params(10)), rtts + 1);
  }
}

TEST(TransferModelTest, TransferTimeScalesWithRtt) {
  const Time rtt = Time::milliseconds(125);
  EXPECT_EQ(transfer_time(50'000, params(10), rtt), Time::milliseconds(375));
  EXPECT_EQ(transfer_time(50'000, params(50), rtt), Time::milliseconds(125));
  EXPECT_EQ(transfer_time(50'000, params(10), rtt, /*handshake=*/true),
            Time::milliseconds(500));
}

TEST(TransferModelTest, RttReductionMatchesRttCounts) {
  // 50 KB: 3 RTTs at IW10 vs 1 at IW50 -> reduction 2/3.
  EXPECT_NEAR(rtt_reduction(50'000, 10, 50), 2.0 / 3.0, 1e-9);
  // Small file: no reduction possible.
  EXPECT_DOUBLE_EQ(rtt_reduction(1'000, 10, 100), 0.0);
  EXPECT_DOUBLE_EQ(rtt_reduction(0, 10, 100), 0.0);
}

TEST(TransferModelTest, HugeFilesSeeDiminishingGains) {
  // Fig 4: beyond ~1 MB, saving a constant number of RTTs matters less.
  const double gain_100k = rtt_reduction(100'000, 10, 100);
  const double gain_10m = rtt_reduction(10'000'000, 10, 100);
  EXPECT_GT(gain_100k, 0.5);
  EXPECT_LT(gain_10m, 0.45);
}

TEST(TransferModelTest, InvalidParamsThrow) {
  EXPECT_THROW(rtts_for_transfer(1000, params(0)), std::invalid_argument);
  EXPECT_THROW(rtts_for_transfer(1000, ModelParams{0, 10}),
               std::invalid_argument);
}

TEST(TransferModelTest, VeryLargeTransferDoesNotOverflow) {
  // 1 TB transfer must terminate with a sane RTT count.
  const auto rtts = rtts_for_transfer(1'000'000'000'000ull, params(10));
  EXPECT_GE(rtts, 20u);
  EXPECT_LE(rtts, 40u);
}

// ---------------------------------------------------- property-style sweeps

struct SweepCase {
  std::uint64_t size;
  std::uint32_t iw;
};

class ModelPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ModelPropertyTest, MoreAggressiveWindowNeverSlower) {
  const auto& c = GetParam();
  const auto base = rtts_for_transfer(c.size, params(c.iw));
  const auto bigger = rtts_for_transfer(c.size, params(c.iw * 2));
  EXPECT_LE(bigger, base);
}

TEST_P(ModelPropertyTest, RttsMonotoneInSize) {
  const auto& c = GetParam();
  const auto now = rtts_for_transfer(c.size, params(c.iw));
  const auto larger = rtts_for_transfer(c.size * 2 + 1, params(c.iw));
  EXPECT_GE(larger, now);
}

TEST_P(ModelPropertyTest, ReductionWithinUnitInterval) {
  const auto& c = GetParam();
  const double r = rtt_reduction(c.size, 10, c.iw);
  EXPECT_GE(r, 0.0);
  EXPECT_LT(r, 1.0);
}

TEST_P(ModelPropertyTest, SizeFitsWithinReportedRtts) {
  const auto& c = GetParam();
  const auto rtts = rtts_for_transfer(c.size, params(c.iw));
  EXPECT_GE(max_bytes_in_rtts(rtts, params(c.iw)), c.size);
  if (rtts > 0) {
    EXPECT_LT(max_bytes_in_rtts(rtts - 1, params(c.iw)), c.size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeWindowSweep, ModelPropertyTest,
    ::testing::Values(SweepCase{1'000, 10}, SweepCase{15'000, 10},
                      SweepCase{50'000, 10}, SweepCase{100'000, 25},
                      SweepCase{100'000, 50}, SweepCase{250'000, 50},
                      SweepCase{1'000'000, 100}, SweepCase{5'000'000, 10},
                      SweepCase{123, 100}, SweepCase{14'600, 10},
                      SweepCase{14'601, 10}, SweepCase{2'920'000, 25}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "size" + std::to_string(info.param.size) + "_iw" +
             std::to_string(info.param.iw);
    });

}  // namespace
}  // namespace riptide::model

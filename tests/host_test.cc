#include <gtest/gtest.h>

#include "host/host.h"
#include "host/routing_table.h"
#include "test_util.h"

namespace riptide::host {
namespace {

using riptide::test::TwoHostNet;
using sim::Time;

// ------------------------------------------------------------ RoutingTable

class NullSink : public net::PacketSink {
 public:
  void receive(const net::Packet&) override {}
};

TEST(RoutingTableTest, LongestPrefixMatch) {
  RoutingTable table;
  NullSink wide, narrow, host;
  table.add_or_replace(net::Prefix::parse("10.0.0.0/8"), wide);
  table.add_or_replace(net::Prefix::parse("10.1.0.0/16"), narrow);
  table.add_or_replace(net::Prefix::host(net::Ipv4Address(10, 1, 0, 7)), host);

  EXPECT_EQ(table.lookup(net::Ipv4Address(10, 2, 0, 1))->device, &wide);
  EXPECT_EQ(table.lookup(net::Ipv4Address(10, 1, 9, 9))->device, &narrow);
  EXPECT_EQ(table.lookup(net::Ipv4Address(10, 1, 0, 7))->device, &host);
  EXPECT_EQ(table.lookup(net::Ipv4Address(192, 168, 0, 1)), nullptr);
}

TEST(RoutingTableTest, ReplaceUpdatesMetricsInPlace) {
  RoutingTable table;
  NullSink sink;
  const auto p = net::Prefix::parse("10.0.0.0/8");
  table.add_or_replace(p, sink, RouteMetrics{20, 0});
  table.add_or_replace(p, sink, RouteMetrics{80, 120});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(net::Ipv4Address(10, 0, 0, 1))->metrics.initcwnd_segments,
            80u);
}

TEST(RoutingTableTest, RemoveRestoresLessSpecific) {
  RoutingTable table;
  NullSink wide, host;
  table.add_or_replace(net::Prefix::parse("0.0.0.0/0"), wide);
  const auto specific = net::Prefix::host(net::Ipv4Address(10, 0, 0, 5));
  table.add_or_replace(specific, host, RouteMetrics{50, 0});
  EXPECT_EQ(table.lookup(net::Ipv4Address(10, 0, 0, 5))->device, &host);
  EXPECT_TRUE(table.remove(specific));
  EXPECT_EQ(table.lookup(net::Ipv4Address(10, 0, 0, 5))->device, &wide);
  EXPECT_FALSE(table.remove(specific));
}

TEST(RoutingTableTest, EffectiveWindowsFallBackWhenUnset) {
  RoutingTable table;
  NullSink sink;
  table.add_or_replace(net::Prefix::parse("0.0.0.0/0"), sink);  // no metrics
  const auto dst = net::Ipv4Address(10, 0, 0, 9);
  EXPECT_EQ(table.effective_initcwnd(dst, 10), 10u);
  EXPECT_EQ(table.effective_initrwnd(dst, 20), 20u);

  table.add_or_replace(net::Prefix::host(dst), sink, RouteMetrics{70, 90});
  EXPECT_EQ(table.effective_initcwnd(dst, 10), 70u);
  EXPECT_EQ(table.effective_initrwnd(dst, 20), 90u);
}

TEST(RoutingTableTest, EffectiveWindowsForUnroutedDestination) {
  RoutingTable table;
  EXPECT_EQ(table.effective_initcwnd(net::Ipv4Address(1, 1, 1, 1), 10), 10u);
}

TEST(RoutingTableTest, HasRouteIsExactMatch) {
  RoutingTable table;
  NullSink sink;
  table.add_or_replace(net::Prefix::parse("10.0.0.0/8"), sink);
  EXPECT_TRUE(table.has_route(net::Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(table.has_route(net::Prefix::parse("10.0.0.0/16")));
}

// ------------------------------------------------------------------- Host

TEST(HostTest, ConnectUsesRouteInitcwnd) {
  TwoHostNet net(Time::milliseconds(10));
  net.a.routing_table().add_or_replace(
      net::Prefix::host(net.b.address()),
      *net.a.routing_table().lookup(net.b.address())->device,
      RouteMetrics{64, 0});
  net.b.listen(80, [](tcp::TcpConnection&) {});
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 80, std::move(cbs));
  EXPECT_EQ(conn.config().initial_cwnd_segments, 64u);
  EXPECT_EQ(conn.cwnd_segments(), 64u);
}

TEST(HostTest, ConnectUsesDefaultWithoutRouteMetrics) {
  TwoHostNet net(Time::milliseconds(10));
  net.b.listen(80, [](tcp::TcpConnection&) {});
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 80, std::move(cbs));
  EXPECT_EQ(conn.config().initial_cwnd_segments, 10u);
}

TEST(HostTest, OverrideConfigStillGetsRouteMetricsApplied) {
  TwoHostNet net(Time::milliseconds(10));
  net.a.routing_table().add_or_replace(
      net::Prefix::host(net.b.address()),
      *net.a.routing_table().lookup(net.b.address())->device,
      RouteMetrics{33, 44});
  net.b.listen(80, [](tcp::TcpConnection&) {});
  tcp::TcpConfig custom;
  custom.congestion_control = tcp::CcAlgorithm::kNewReno;
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 80, std::move(cbs), custom);
  EXPECT_EQ(conn.config().initial_cwnd_segments, 33u);
  EXPECT_EQ(conn.config().initial_rwnd_segments, 44u);
  EXPECT_EQ(conn.config().congestion_control, tcp::CcAlgorithm::kNewReno);
}

TEST(HostTest, EphemeralPortsDistinct) {
  TwoHostNet net(Time::milliseconds(10));
  net.b.listen(80, [](tcp::TcpConnection&) {});
  tcp::TcpConnection::Callbacks cbs1, cbs2;
  auto& c1 = net.a.connect(net.b.address(), 80, std::move(cbs1));
  auto& c2 = net.a.connect(net.b.address(), 80, std::move(cbs2));
  EXPECT_NE(c1.tuple().local_port, c2.tuple().local_port);
}

TEST(HostTest, SocketStatsReflectsLiveConnections) {
  TwoHostNet net(Time::milliseconds(10));
  net.b.listen(80, [](tcp::TcpConnection&) {});
  tcp::TcpConnection::Callbacks cbs;
  net.a.connect(net.b.address(), 80, std::move(cbs));
  net.sim.run_until(Time::milliseconds(100));
  const auto stats = net.a.socket_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].state, tcp::TcpState::kEstablished);
  EXPECT_EQ(stats[0].tuple.remote_addr, net.b.address());
  EXPECT_EQ(stats[0].cwnd_segments, 10u);
  // Server side also sees its accepted connection.
  EXPECT_EQ(net.b.socket_stats().size(), 1u);
}

TEST(HostTest, RstSentForSegmentToClosedPort) {
  TwoHostNet net(Time::milliseconds(10));
  tcp::TcpConnection::Callbacks cbs;
  bool closed_reset = false;
  cbs.on_closed = [&](bool reset) { closed_reset = reset; };
  net.a.connect(net.b.address(), 4242, std::move(cbs));
  net.sim.run_until(Time::milliseconds(100));
  EXPECT_EQ(net.b.stats().rst_sent, 1u);
  EXPECT_TRUE(closed_reset);
  EXPECT_EQ(net.a.connection_count(), 0u);
}

TEST(HostTest, ListenRejectsDuplicatePort) {
  TwoHostNet net(Time::milliseconds(10));
  net.b.listen(80, [](tcp::TcpConnection&) {});
  EXPECT_THROW(net.b.listen(80, [](tcp::TcpConnection&) {}),
               std::logic_error);
}

TEST(HostTest, CloseListenerStopsAccepting) {
  TwoHostNet net(Time::milliseconds(10));
  net.b.listen(80, [](tcp::TcpConnection&) {});
  net.b.close_listener(80);
  tcp::TcpConnection::Callbacks cbs;
  bool reset = false;
  cbs.on_closed = [&](bool r) { reset = r; };
  net.a.connect(net.b.address(), 80, std::move(cbs));
  net.sim.run_until(Time::milliseconds(200));
  EXPECT_TRUE(reset);
}

TEST(HostTest, CountersTrackOpensAndAccepts) {
  TwoHostNet net(Time::milliseconds(10));
  net.b.listen(80, [](tcp::TcpConnection&) {});
  for (int i = 0; i < 3; ++i) {
    tcp::TcpConnection::Callbacks cbs;
    net.a.connect(net.b.address(), 80, std::move(cbs));
  }
  net.sim.run_until(Time::milliseconds(200));
  EXPECT_EQ(net.a.stats().connections_opened, 3u);
  EXPECT_EQ(net.b.stats().connections_accepted, 3u);
  EXPECT_GT(net.a.stats().packets_sent, 0u);
  EXPECT_GT(net.b.stats().packets_received, 0u);
}

TEST(HostTest, FindConnectionByTuple) {
  TwoHostNet net(Time::milliseconds(10));
  net.b.listen(80, [](tcp::TcpConnection&) {});
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 80, std::move(cbs));
  EXPECT_EQ(net.a.find_connection(conn.tuple()), &conn);
  tcp::FourTuple missing = conn.tuple();
  missing.remote_port = 9999;
  EXPECT_EQ(net.a.find_connection(missing), nullptr);
}

TEST(HostTest, ClosedConnectionsLeaveSocketStats) {
  TwoHostNet net(Time::milliseconds(10));
  net.b.listen(80, [](tcp::TcpConnection&) {});
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 80, std::move(cbs));
  net.sim.run_until(Time::milliseconds(100));
  conn.abort();
  net.sim.run_until(Time::milliseconds(200));
  EXPECT_TRUE(net.a.socket_stats().empty());
  EXPECT_EQ(net.a.connection_count(), 0u);
}

}  // namespace
}  // namespace riptide::host

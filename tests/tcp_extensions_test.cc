// Tests for the optional TCP features: packet pacing and HyStart.

#include <gtest/gtest.h>

#include "tcp/cubic.h"
#include "test_util.h"

namespace riptide::tcp {
namespace {

using riptide::test::TwoHostNet;
using sim::Time;

// ----------------------------------------------------------------- pacing

// One-way transfer helper: a -> b, returns bytes received at b.
std::uint64_t push(TwoHostNet& net, std::uint64_t bytes, Time deadline) {
  std::uint64_t received = 0;
  net.b.listen(80, [&](TcpConnection& conn) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](std::uint64_t n) { received += n; };
    cbs.on_peer_closed = [&conn] { conn.close(); };
    conn.set_callbacks(std::move(cbs));
  });
  TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 80, std::move(cbs));
  net.sim.run_until(Time::milliseconds(200));
  conn.send(bytes);
  conn.close();
  net.sim.run_until(deadline);
  return received;
}

TcpConfig big_window_config(bool pacing) {
  TcpConfig config;
  config.initial_cwnd_segments = 100;
  config.initial_rwnd_segments = 200;
  config.pacing = pacing;
  return config;
}

TEST(PacingTest, PacedTransferDeliversExactly) {
  TwoHostNet net(Time::milliseconds(50), 1e9, big_window_config(true));
  EXPECT_EQ(push(net, 500'000, Time::seconds(30)), 500'000u);
}

TEST(PacingTest, UnpacedBigWindowOverflowsShallowQueue) {
  // 100-segment burst into a 20-packet drop-tail queue: heavy loss.
  TwoHostNet net(Time::milliseconds(50), 1e9, big_window_config(false),
                 /*queue_packets=*/20);
  const auto received = push(net, 100'000, Time::seconds(30));
  EXPECT_EQ(received, 100'000u);  // recovery still delivers everything
  EXPECT_GT(net.link_ab.stats().drops_queue_full, 10u);
}

TEST(PacingTest, PacingEliminatesBurstDrops) {
  TwoHostNet net(Time::milliseconds(50), 1e9, big_window_config(true),
                 /*queue_packets=*/20);
  const auto received = push(net, 100'000, Time::seconds(30));
  EXPECT_EQ(received, 100'000u);
  // Segments leave at gain * cwnd / srtt, so the shallow queue never sees
  // the whole window at once.
  EXPECT_EQ(net.link_ab.stats().drops_queue_full, 0u);
}

TEST(PacingTest, PacingCostsAtMostOneRttOnCleanPath) {
  // Completion with pacing (gain 2: window spread over srtt/2) should stay
  // close to the unpaced time on an uncongested path.
  TwoHostNet unpaced(Time::milliseconds(50), 1e9, big_window_config(false));
  std::uint64_t r1 = 0;
  Time t1;
  {
    unpaced.b.listen(80, [&](TcpConnection& conn) {
      TcpConnection::Callbacks cbs;
      cbs.on_data = [&](std::uint64_t n) {
        r1 += n;
        if (r1 >= 100'000) t1 = unpaced.sim.now();
      };
      conn.set_callbacks(std::move(cbs));
    });
    TcpConnection::Callbacks cbs;
    auto& conn = unpaced.a.connect(unpaced.b.address(), 80, std::move(cbs));
    unpaced.sim.run_until(Time::milliseconds(200));
    conn.send(100'000);
    unpaced.sim.run_until(Time::seconds(10));
  }

  TwoHostNet paced(Time::milliseconds(50), 1e9, big_window_config(true));
  std::uint64_t r2 = 0;
  Time t2;
  {
    paced.b.listen(80, [&](TcpConnection& conn) {
      TcpConnection::Callbacks cbs;
      cbs.on_data = [&](std::uint64_t n) {
        r2 += n;
        if (r2 >= 100'000) t2 = paced.sim.now();
      };
      conn.set_callbacks(std::move(cbs));
    });
    TcpConnection::Callbacks cbs;
    auto& conn = paced.a.connect(paced.b.address(), 80, std::move(cbs));
    paced.sim.run_until(Time::milliseconds(200));
    conn.send(100'000);
    paced.sim.run_until(Time::seconds(10));
  }
  ASSERT_EQ(r1, 100'000u);
  ASSERT_EQ(r2, 100'000u);
  // Pacing with gain 2 adds at most ~srtt/2 to a single-flight transfer.
  EXPECT_LT((t2 - t1).to_milliseconds(), 80.0);
}

TEST(PacingTest, PacingWorksUnderLoss) {
  auto config = big_window_config(true);
  TwoHostNet net(Time::milliseconds(20), 1e9, config);
  net.filter_ab.drop_next_data_packets(3);
  EXPECT_EQ(push(net, 300'000, Time::seconds(30)), 300'000u);
}

// ---------------------------------------------------------------- HyStart

constexpr std::uint32_t kMss = 1460;

AckEvent rtt_ack(Time now, Time rtt) {
  return AckEvent{now, kMss, 50 * kMss, rtt};
}

TEST(HystartTest, ExitsSlowStartOnDelayIncrease) {
  Cubic cc(kMss, 10 * kMss, /*hystart=*/true);
  Time now = Time::zero();
  // Round 1: flat 100 ms RTTs.
  for (int i = 0; i < 10; ++i) {
    now += Time::milliseconds(12);
    cc.on_ack(rtt_ack(now, Time::milliseconds(100)));
  }
  ASSERT_TRUE(cc.in_slow_start());
  // Rounds 2-3: RTT inflates by 60 ms (queue building).
  for (int i = 0; i < 30; ++i) {
    now += Time::milliseconds(12);
    cc.on_ack(rtt_ack(now, Time::milliseconds(160)));
  }
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(HystartTest, StaysInSlowStartOnFlatRtt) {
  Cubic cc(kMss, 10 * kMss, /*hystart=*/true);
  Time now = Time::zero();
  for (int i = 0; i < 60; ++i) {
    now += Time::milliseconds(12);
    cc.on_ack(rtt_ack(now, Time::milliseconds(100)));
  }
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(HystartTest, SmallJitterBelowEtaIgnored) {
  Cubic cc(kMss, 10 * kMss, /*hystart=*/true);
  Time now = Time::zero();
  // +-2 ms jitter is below the 4 ms minimum eta.
  for (int i = 0; i < 60; ++i) {
    now += Time::milliseconds(12);
    cc.on_ack(rtt_ack(now, Time::milliseconds(100 + (i % 2 == 0 ? 2 : 0))));
  }
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(HystartTest, DisabledByDefault) {
  Cubic cc(kMss, 10 * kMss);
  EXPECT_FALSE(cc.hystart_enabled());
  Time now = Time::zero();
  for (int i = 0; i < 40; ++i) {
    now += Time::milliseconds(12);
    cc.on_ack(rtt_ack(now, Time::milliseconds(100 + i * 10)));
  }
  EXPECT_TRUE(cc.in_slow_start());  // delay increase ignored
}

TEST(HystartTest, FactoryWiresConfigFlag) {
  TcpConfig config;
  config.congestion_control = CcAlgorithm::kCubic;
  config.hystart = true;
  auto cc = make_congestion_control(config, 10 * config.mss);
  auto* cubic = dynamic_cast<Cubic*>(cc.get());
  ASSERT_NE(cubic, nullptr);
  EXPECT_TRUE(cubic->hystart_enabled());
}

}  // namespace
}  // namespace riptide::tcp

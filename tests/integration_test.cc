#include <gtest/gtest.h>

#include "cdn/experiment.h"
#include "cdn/pops.h"

namespace riptide::cdn {
namespace {

using sim::Time;

// Compact 4-PoP world used by the closed-loop tests: one near pair and two
// far destinations, one host per PoP.
std::vector<PopSpec> mini_specs() {
  return {{"lon", Continent::kEurope, {51.51, -0.13}},
          {"fra", Continent::kEurope, {50.11, 8.68}},
          {"nyc", Continent::kNorthAmerica, {40.71, -74.01}},
          {"tyo", Continent::kAsia, {35.68, 139.69}}};
}

ExperimentConfig mini_config(bool riptide_enabled, std::uint64_t seed = 1) {
  ExperimentConfig config;
  config.pop_specs = mini_specs();
  config.topology.hosts_per_pop = 1;
  config.topology.wan_loss_probability = 0.0;  // deterministic timings
  config.topology.seed = seed;
  config.riptide_enabled = riptide_enabled;
  config.riptide.update_interval = Time::seconds(1);
  config.riptide.c_max = 100;
  config.probe.interval = Time::seconds(5);
  config.probe.idle_close = Time::seconds(10);
  config.duration = Time::seconds(90);
  config.cwnd_sample_interval = Time::seconds(10);
  config.seed = seed;
  return config;
}

int pop_index(const std::vector<PopSpec>& specs, const std::string& name) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

TEST(ExperimentIntegrationTest, ProbesFlowAndAreRecorded) {
  Experiment exp(mini_config(/*riptide=*/false));
  exp.run();
  const auto& flows = exp.metrics().flows();
  // 4 PoPs x 3 targets x 3 sizes, every 5 s over 90 s: hundreds of flows.
  EXPECT_GT(flows.size(), 300u);
  for (const auto& flow : flows) {
    EXPECT_GT(flow.duration, Time::zero());
    EXPECT_GE(flow.src_pop, 0);
    EXPECT_GE(flow.dst_pop, 0);
    EXPECT_NE(flow.src_pop, flow.dst_pop);
  }
  // All three probe sizes present.
  for (std::uint64_t size : {10'000u, 50'000u, 100'000u}) {
    const auto cdf = exp.metrics().completion_cdf(
        [=](const FlowRecord& f) { return f.object_bytes == size; });
    EXPECT_GT(cdf.count(), 50u) << size;
  }
}

TEST(ExperimentIntegrationTest, AgentsLearnRoutesOnEveryHost) {
  Experiment exp(mini_config(/*riptide=*/true));
  exp.run();
  ASSERT_EQ(exp.agents().size(), 4u);
  for (const auto& agent : exp.agents()) {
    EXPECT_GT(agent->stats().polls, 80u);
    EXPECT_GT(agent->stats().routes_set, 0u);
    EXPECT_FALSE(agent->table().entries().empty());
  }
}

TEST(ExperimentIntegrationTest, RiptideRaisesLearnedWindowsTowardCmax) {
  Experiment exp(mini_config(/*riptide=*/true));
  exp.run();
  // After 90 s of 100 KB probes, at least one destination per host should
  // have ratcheted well past the default window of 10.
  for (const auto& agent : exp.agents()) {
    double best = 0.0;
    for (const auto& [dst, state] : agent->table().entries()) {
      best = std::max(best, state.final_window_segments);
    }
    EXPECT_GT(best, 30.0) << agent->host().name();
    EXPECT_LE(best, 100.0) << agent->host().name();  // c_max bound
  }
}

TEST(ExperimentIntegrationTest, FreshLargeProbesCompleteFasterWithRiptide) {
  auto treatment_cfg = mini_config(true);
  auto control_cfg = mini_config(false);
  Experiment treatment(treatment_cfg);
  Experiment control(control_cfg);
  treatment.run();
  control.run();

  const int lon = pop_index(mini_specs(), "lon");
  const int tyo = pop_index(mini_specs(), "tyo");

  // 100 KB to a far destination: IW10 needs 3 data RTTs, learned windows
  // need 1. Compare medians of fresh-connection probes.
  const auto treated = treatment.probe_cdf(lon, 100'000, tyo, /*fresh=*/true);
  const auto baseline = control.probe_cdf(lon, 100'000, tyo, /*fresh=*/true);
  ASSERT_GT(treated.count(), 10u);
  ASSERT_GT(baseline.count(), 10u);

  const double rtt_ms =
      treatment.topology().base_rtt(static_cast<std::size_t>(lon),
                                    static_cast<std::size_t>(tyo))
          .to_milliseconds();
  // At least one full RTT saved at the median.
  EXPECT_LT(treated.percentile(50), baseline.percentile(50) - rtt_ms * 0.9);
}

TEST(ExperimentIntegrationTest, SmallProbesUnaffectedByRiptide) {
  // Fig 12's expectation: 10 KB already fits in IW10, so Riptide must not
  // change (or harm) its completion time.
  Experiment treatment(mini_config(true));
  Experiment control(mini_config(false));
  treatment.run();
  control.run();

  const int lon = pop_index(mini_specs(), "lon");
  const int nyc = pop_index(mini_specs(), "nyc");
  const auto treated = treatment.probe_cdf(lon, 10'000, nyc);
  const auto baseline = control.probe_cdf(lon, 10'000, nyc);
  ASSERT_GT(treated.count(), 10u);
  ASSERT_GT(baseline.count(), 10u);
  EXPECT_NEAR(treated.percentile(50), baseline.percentile(50),
              baseline.percentile(50) * 0.10);
}

TEST(ExperimentIntegrationTest, LiveWindowsLargerUnderRiptide) {
  // Fig 10's headline: the sampled cwnd distribution shifts up (the paper
  // reports a 100-200% median increase).
  Experiment treatment(mini_config(true));
  Experiment control(mini_config(false));
  treatment.run();
  control.run();

  const auto treated = treatment.metrics().cwnd_cdf();
  const auto baseline = control.metrics().cwnd_cdf();
  ASSERT_GT(treated.count(), 50u);
  ASSERT_GT(baseline.count(), 50u);
  EXPECT_GT(treated.percentile(50), baseline.percentile(50) * 1.5);
  // And the c_max clamp holds: no programmed window exceeds 100, so fresh
  // idle connections can't sit above it (grown ones may).
  EXPECT_LE(treated.percentile(50), 250.0);
}

TEST(ExperimentIntegrationTest, DeterministicAcrossIdenticalSeeds) {
  Experiment a(mini_config(true, 7));
  Experiment b(mini_config(true, 7));
  a.run();
  b.run();
  ASSERT_EQ(a.metrics().flows().size(), b.metrics().flows().size());
  for (std::size_t i = 0; i < a.metrics().flows().size(); ++i) {
    EXPECT_EQ(a.metrics().flows()[i].duration.ns(),
              b.metrics().flows()[i].duration.ns());
  }
}

TEST(ExperimentIntegrationTest, OrganicTrafficDrivesWindowsHigher) {
  // Fig 11: a PoP pushing organic traffic reaches much larger windows than
  // a probe-only PoP.
  auto config = mini_config(true);
  config.organic_source_pops = {0};  // lon pushes organic traffic
  config.organic.mean_interarrival_seconds = 0.5;
  Experiment exp(config);
  exp.run();

  const auto organic_pop = exp.metrics().cwnd_cdf(0);
  const auto probe_pop = exp.metrics().cwnd_cdf(2);
  ASSERT_GT(organic_pop.count(), 20u);
  ASSERT_GT(probe_pop.count(), 20u);
  EXPECT_GT(organic_pop.percentile(75), probe_pop.percentile(75));
}

TEST(ExperimentIntegrationTest, LossyWanStillCompletesProbes) {
  auto config = mini_config(true);
  config.topology.wan_loss_probability = 0.003;
  Experiment exp(config);
  exp.run();
  EXPECT_GT(exp.metrics().flows().size(), 250u);
}

}  // namespace
}  // namespace riptide::cdn

// Hostile-scenario suite (src/cdn/hostile.h): the spec grammar, the
// synchronized incast / flash-crowd wave generators, the sharded-mode
// rejection, and the headline robustness ordering — under a shallow
// bottleneck queue the governed adaptive policy beats a blind static
// IW50.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "cdn/experiment.h"
#include "cdn/hostile.h"
#include "cdn/pops.h"
#include "policy/policy.h"
#include "sim/time.h"

namespace riptide {
namespace {

using cdn::HostileKind;
using cdn::parse_hostile_spec;
using sim::Time;

TEST(HostileParseTest, BareNamesSelectTheScenario) {
  EXPECT_EQ(parse_hostile_spec("none").kind, HostileKind::kNone);
  EXPECT_EQ(parse_hostile_spec("shallow-buffer").kind,
            HostileKind::kShallowBuffer);
  EXPECT_EQ(parse_hostile_spec("incast").kind, HostileKind::kIncast);
  EXPECT_EQ(parse_hostile_spec("flash-crowd").kind, HostileKind::kFlashCrowd);
  EXPECT_EQ(parse_hostile_spec("combined").kind, HostileKind::kCombined);
}

TEST(HostileParseTest, KeysLandInTheirFields) {
  const auto incast = parse_hostile_spec(
      "incast:victim=2,fanin=16,burst=1000000,start=7.5,interval=10");
  EXPECT_EQ(incast.kind, HostileKind::kIncast);
  EXPECT_EQ(incast.victim_pop, 2u);
  EXPECT_EQ(incast.fanin_connections, 16);
  EXPECT_EQ(incast.burst_bytes, 1'000'000u);
  EXPECT_EQ(incast.incast_start, Time::from_seconds(7.5));
  EXPECT_EQ(incast.incast_interval, Time::seconds(10));

  const auto crowd = parse_hostile_spec(
      "flash-crowd:at=15,conns=24,bytes=500000,repeats=3,period=20");
  EXPECT_EQ(crowd.crowd_at, Time::seconds(15));
  EXPECT_EQ(crowd.crowd_connections, 24);
  EXPECT_EQ(crowd.crowd_bytes, 500'000u);
  EXPECT_EQ(crowd.crowd_repeats, 3);
  EXPECT_EQ(crowd.crowd_period, Time::seconds(20));

  EXPECT_EQ(parse_hostile_spec("shallow-buffer:queue=24").queue_packets, 24u);
  // Keys are shared across scenarios: combined takes all of them.
  const auto combined =
      parse_hostile_spec("combined:queue=16,victim=1,conns=8");
  EXPECT_EQ(combined.queue_packets, 16u);
  EXPECT_EQ(combined.victim_pop, 1u);
  EXPECT_EQ(combined.crowd_connections, 8);
}

TEST(HostileParseTest, GarbageThrows) {
  for (const char* bad :
       {"", "meteor-strike", "incast:", "incast:victim", "incast:=3",
        "incast:victim=", "incast:victim=abc", "incast:victim=-1",
        "incast:victim=2000", "incast:fanin=0", "incast:interval=0",
        "incast:bogus=1", "shallow-buffer:queue=0",
        "flash-crowd:repeats=0", "flash-crowd:period=-5",
        "flash-crowd:at=nan", "combined:queue=9999999999"}) {
    EXPECT_THROW(parse_hostile_spec(bad), std::invalid_argument) << bad;
  }
}

cdn::ExperimentConfig small_world() {
  cdn::ExperimentConfig config;
  auto pops = cdn::default_pop_specs();
  pops.resize(3);
  config.pop_specs = std::move(pops);
  config.topology.hosts_per_pop = 1;
  config.riptide_enabled = false;
  config.duration = Time::seconds(12);
  config.seed = 21;
  return config;
}

TEST(HostileSourceTest, IncastFiresSynchronizedWavesFromEveryNonVictim) {
  auto config = small_world();
  config.hostile = parse_hostile_spec(
      "incast:victim=0,fanin=2,burst=50000,start=2,interval=4");
  cdn::Experiment experiment(std::move(config));
  experiment.run();

  // 2 non-victim hosts, waves at t = 2, 6, 10 s inside the 12 s run.
  ASSERT_EQ(experiment.incast_sources().size(), 2u);
  for (const auto& source : experiment.incast_sources()) {
    EXPECT_EQ(source->waves_fired(), 3u);
    EXPECT_EQ(source->connections_opened(), 6u);
    EXPECT_EQ(source->bytes_queued(), 6u * 50'000u);
  }
  EXPECT_TRUE(experiment.flash_crowd_sources().empty());
}

TEST(HostileSourceTest, FlashCrowdMobilizesEveryHost) {
  auto config = small_world();
  config.hostile =
      parse_hostile_spec("flash-crowd:at=2,conns=4,bytes=20000,repeats=2,period=4");
  cdn::Experiment experiment(std::move(config));
  experiment.run();

  // Every host is a source; waves at t = 2 and 6 s.
  ASSERT_EQ(experiment.flash_crowd_sources().size(), 3u);
  for (const auto& source : experiment.flash_crowd_sources()) {
    EXPECT_EQ(source->waves_fired(), 2u);
    EXPECT_EQ(source->connections_opened(), 8u);
    EXPECT_EQ(source->bytes_queued(), 8u * 20'000u);
  }
  EXPECT_TRUE(experiment.incast_sources().empty());

  // The crowd's transfers land in the flow metrics like any other flow.
  EXPECT_GT(experiment.metrics().flows().size(), 0u);
}

TEST(HostileSourceTest, CombinedRunsBothGenerators) {
  auto config = small_world();
  config.hostile = parse_hostile_spec(
      "combined:victim=1,fanin=1,burst=10000,start=3,interval=100,"
      "at=5,conns=2,bytes=10000,repeats=1,period=100");
  cdn::Experiment experiment(std::move(config));
  experiment.run();
  ASSERT_EQ(experiment.incast_sources().size(), 2u);
  ASSERT_EQ(experiment.flash_crowd_sources().size(), 3u);
  for (const auto& source : experiment.incast_sources()) {
    EXPECT_EQ(source->waves_fired(), 1u);
  }
  for (const auto& source : experiment.flash_crowd_sources()) {
    EXPECT_EQ(source->waves_fired(), 1u);
  }
}

TEST(HostileSourceTest, VictimPopMustExist) {
  auto config = small_world();
  config.hostile = parse_hostile_spec("incast:victim=7");
  EXPECT_THROW(cdn::Experiment{std::move(config)}, std::invalid_argument);
}

TEST(HostileSourceTest, HostileScenariosRefuseShardedMode) {
  auto config = small_world();
  config.hostile = parse_hostile_spec("flash-crowd");
  config.sharding.enabled = true;
  config.sharding.shards = 1;
  EXPECT_THROW(cdn::Experiment{std::move(config)}, std::invalid_argument);
}

// The robustness headline, end to end: on a constrained WAN with a
// shallow bottleneck queue, static IW50 melts the queue (retransmission
// storm) while the governed adaptive agent backs itself off. Mirrors the
// bench_policy_zoo shallow-buffer column at test scale.
cdn::ExperimentConfig hostile_world(const char* policy_name) {
  cdn::ExperimentConfig config;
  auto pops = cdn::default_pop_specs();
  pops.resize(4);
  config.pop_specs = std::move(pops);
  config.topology.hosts_per_pop = 2;
  // 20x LAN/WAN rate mismatch: without it an IW flight never queues and
  // no policy can overflow anything (see bench_policy_zoo.cc).
  config.topology.wan_rate_bps = 500e6;
  config.riptide.update_interval = Time::seconds(2);
  config.probe.interval = Time::seconds(2);
  config.organic_source_pops = {0};
  config.duration = Time::seconds(60);
  config.seed = 11;

  const auto hostile = parse_hostile_spec("shallow-buffer:queue=24");
  config.hostile = hostile;
  config.topology.wan_queue_packets = hostile.queue_packets;
  policy::apply_policy(config, policy::parse_policy(policy_name));
  return config;
}

TEST(HostileEndToEndTest, GovernedAdaptiveOutlastsStaticIw50OnShallowQueues) {
  cdn::Experiment iw50(hostile_world("static-iw50"));
  iw50.run();
  cdn::Experiment governed(hostile_world("adaptive-governed"));
  governed.run();

  const auto iw50_retrans = iw50.topology().total_retransmissions();
  const auto governed_retrans = governed.topology().total_retransmissions();
  // The margin in BENCH_policy.json is ~30x; demand 2x so seeds and
  // timer jitter cannot flake the test.
  EXPECT_GT(iw50_retrans, 2 * governed_retrans)
      << "iw50=" << iw50_retrans << " governed=" << governed_retrans;

  // And the governor actually intervened rather than the traffic just
  // being gentler: some staged action or rollback fired.
  std::uint64_t actions = 0;
  for (const auto& agent : governed.agents()) {
    const auto& stats = agent->stats();
    actions += stats.governor_rollbacks + stats.governor_stage_scaledowns +
               stats.governor_stage_withdrawals;
  }
  EXPECT_GT(actions, 0u);
}

}  // namespace
}  // namespace riptide

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "net/ipv4.h"
#include "net/link.h"
#include "net/packet.h"
#include "net/router.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace riptide::net {
namespace {

// ------------------------------------------------------------------- Ipv4

TEST(Ipv4Test, OctetConstructionAndFormatting) {
  const Ipv4Address a(10, 1, 2, 3);
  EXPECT_EQ(a.to_string(), "10.1.2.3");
  EXPECT_EQ(a.value(), 0x0A010203u);
}

TEST(Ipv4Test, ParseRoundTrip) {
  const auto a = Ipv4Address::parse("192.168.0.254");
  EXPECT_EQ(a, Ipv4Address(192, 168, 0, 254));
  EXPECT_EQ(a.to_string(), "192.168.0.254");
}

TEST(Ipv4Test, ParseRejectsMalformed) {
  EXPECT_THROW(Ipv4Address::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1.2.3.256"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("hello"), std::invalid_argument);
}

TEST(Ipv4Test, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
}

// ----------------------------------------------------------------- Prefix

TEST(PrefixTest, CanonicalizesHostBits) {
  const Prefix p(Ipv4Address(10, 1, 2, 3), 16);
  EXPECT_EQ(p.address(), Ipv4Address(10, 1, 0, 0));
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(PrefixTest, ContainsAddress) {
  const Prefix p(Ipv4Address(10, 1, 0, 0), 16);
  EXPECT_TRUE(p.contains(Ipv4Address(10, 1, 200, 7)));
  EXPECT_FALSE(p.contains(Ipv4Address(10, 2, 0, 1)));
}

TEST(PrefixTest, ZeroLengthContainsEverything) {
  const Prefix any(Ipv4Address(0), 0);
  EXPECT_TRUE(any.contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(any.contains(Ipv4Address(0)));
  EXPECT_EQ(any.mask(), 0u);
}

TEST(PrefixTest, HostPrefixMatchesOnlyItself) {
  const auto p = Prefix::host(Ipv4Address(10, 0, 0, 5));
  EXPECT_EQ(p.length(), 32);
  EXPECT_TRUE(p.contains(Ipv4Address(10, 0, 0, 5)));
  EXPECT_FALSE(p.contains(Ipv4Address(10, 0, 0, 6)));
}

TEST(PrefixTest, ContainsPrefix) {
  const Prefix wide(Ipv4Address(10, 0, 0, 0), 8);
  const Prefix narrow(Ipv4Address(10, 1, 0, 0), 16);
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
}

TEST(PrefixTest, ParseAndErrors) {
  const auto p = Prefix::parse("172.16.0.0/12");
  EXPECT_EQ(p.length(), 12);
  EXPECT_TRUE(p.contains(Ipv4Address(172, 20, 1, 1)));
  EXPECT_THROW(Prefix::parse("10.0.0.0"), std::invalid_argument);
  EXPECT_THROW(Prefix(Ipv4Address(0), 33), std::invalid_argument);
  EXPECT_THROW(Prefix(Ipv4Address(0), -1), std::invalid_argument);
}

TEST(PrefixTest, EqualityAfterCanonicalization) {
  EXPECT_EQ(Prefix(Ipv4Address(10, 1, 2, 3), 16),
            Prefix(Ipv4Address(10, 1, 9, 9), 16));
}

// ------------------------------------------------------------------- Link

class CollectingSink : public PacketSink {
 public:
  void receive(const Packet& packet) override {
    packets.push_back(packet);
    arrival_times.push_back(sim_ != nullptr ? sim_->now() : sim::Time::zero());
  }
  void bind(sim::Simulator& sim) { sim_ = &sim; }

  std::vector<Packet> packets;
  std::vector<sim::Time> arrival_times;

 private:
  sim::Simulator* sim_ = nullptr;
};

Packet make_packet(std::uint32_t bytes) {
  Packet p;
  p.src = Ipv4Address(10, 0, 0, 1);
  p.dst = Ipv4Address(10, 0, 0, 2);
  p.size_bytes = bytes;
  return p;
}

TEST(LinkTest, DeliversAfterSerializationPlusPropagation) {
  sim::Simulator sim;
  CollectingSink sink;
  sink.bind(sim);
  // 1 Mbps, 10 ms propagation: 1250-byte packet serializes in 10 ms.
  Link link(sim, {1e6, sim::Time::milliseconds(10), 16, 0.0, "l"}, sink);
  link.receive(make_packet(1250));
  sim.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.arrival_times[0], sim::Time::milliseconds(20));
}

TEST(LinkTest, BackToBackPacketsQueueBehindSerialization) {
  sim::Simulator sim;
  CollectingSink sink;
  sink.bind(sim);
  Link link(sim, {1e6, sim::Time::zero(), 16, 0.0, "l"}, sink);
  link.receive(make_packet(1250));  // 10 ms each
  link.receive(make_packet(1250));
  sim.run();
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(sink.arrival_times[0], sim::Time::milliseconds(10));
  EXPECT_EQ(sink.arrival_times[1], sim::Time::milliseconds(20));
}

TEST(LinkTest, DropsWhenQueueFull) {
  sim::Simulator sim;
  CollectingSink sink;
  sink.bind(sim);
  Link link(sim, {1e6, sim::Time::zero(), 2, 0.0, "l"}, sink);
  for (int i = 0; i < 5; ++i) link.receive(make_packet(1250));
  sim.run();
  EXPECT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(link.stats().drops_queue_full, 3u);
  EXPECT_EQ(link.stats().packets_delivered, 2u);
  EXPECT_EQ(link.stats().packets_sent, 5u);
}

TEST(LinkTest, QueueDrainsOverTime) {
  sim::Simulator sim;
  CollectingSink sink;
  sink.bind(sim);
  Link link(sim, {1e6, sim::Time::zero(), 1, 0.0, "l"}, sink);
  link.receive(make_packet(1250));
  sim.run();
  link.receive(make_packet(1250));  // queue had drained; admitted
  sim.run();
  EXPECT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(link.stats().drops_queue_full, 0u);
}

TEST(LinkTest, RandomLossDropsApproximatelyAtRate) {
  sim::Simulator sim;
  CollectingSink sink;
  sink.bind(sim);
  sim::Rng rng(1);
  Link link(sim, {1e9, sim::Time::zero(), 100000, 0.1, "l"}, sink, &rng);
  const int n = 10000;
  for (int i = 0; i < n; ++i) link.receive(make_packet(100));
  sim.run();
  const double loss_rate =
      static_cast<double>(link.stats().drops_random_loss) / n;
  EXPECT_NEAR(loss_rate, 0.1, 0.02);
}

TEST(LinkTest, LossRequiresRng) {
  sim::Simulator sim;
  CollectingSink sink;
  EXPECT_THROW(
      Link(sim, {1e6, sim::Time::zero(), 16, 0.5, "l"}, sink, nullptr),
      std::invalid_argument);
}

TEST(LinkTest, RejectsNonPositiveRate) {
  sim::Simulator sim;
  CollectingSink sink;
  EXPECT_THROW(Link(sim, {0.0, sim::Time::zero(), 16, 0.0, "l"}, sink),
               std::invalid_argument);
}

TEST(LinkTest, TransmissionTimeScalesWithSize) {
  sim::Simulator sim;
  CollectingSink sink;
  Link link(sim, {8e6, sim::Time::zero(), 16, 0.0, "l"}, sink);
  EXPECT_EQ(link.transmission_time(1000), sim::Time::milliseconds(1));
  EXPECT_EQ(link.transmission_time(2000), sim::Time::milliseconds(2));
}

TEST(LinkTest, BytesDeliveredAccumulates) {
  sim::Simulator sim;
  CollectingSink sink;
  Link link(sim, {1e9, sim::Time::zero(), 16, 0.0, "l"}, sink);
  link.receive(make_packet(100));
  link.receive(make_packet(200));
  sim.run();
  EXPECT_EQ(link.stats().bytes_delivered, 300u);
}

// ----------------------------------------------------------------- Router

TEST(RouterTest, LongestPrefixMatchWins) {
  Router router("r");
  CollectingSink wide;
  CollectingSink narrow;
  router.add_route(Prefix(Ipv4Address(10, 0, 0, 0), 8), wide);
  router.add_route(Prefix(Ipv4Address(10, 1, 0, 0), 16), narrow);

  router.receive(make_packet(100));  // dst 10.0.0.2 -> /8
  Packet p = make_packet(100);
  p.dst = Ipv4Address(10, 1, 5, 5);
  router.receive(p);  // -> /16

  EXPECT_EQ(wide.packets.size(), 1u);
  EXPECT_EQ(narrow.packets.size(), 1u);
  EXPECT_EQ(router.forwarded(), 2u);
}

TEST(RouterTest, NoRouteDrops) {
  Router router("r");
  Packet p = make_packet(100);
  p.dst = Ipv4Address(192, 168, 1, 1);
  router.receive(p);
  EXPECT_EQ(router.no_route_drops(), 1u);
  EXPECT_EQ(router.forwarded(), 0u);
}

TEST(RouterTest, AddRouteReplacesExisting) {
  Router router("r");
  CollectingSink first;
  CollectingSink second;
  const Prefix p(Ipv4Address(10, 0, 0, 0), 8);
  router.add_route(p, first);
  router.add_route(p, second);
  EXPECT_EQ(router.route_count(), 1u);
  router.receive(make_packet(100));
  EXPECT_TRUE(first.packets.empty());
  EXPECT_EQ(second.packets.size(), 1u);
}

TEST(RouterTest, RemoveRoute) {
  Router router("r");
  CollectingSink sink;
  const Prefix p(Ipv4Address(10, 0, 0, 0), 8);
  router.add_route(p, sink);
  EXPECT_TRUE(router.remove_route(p));
  EXPECT_FALSE(router.remove_route(p));
  router.receive(make_packet(100));
  EXPECT_EQ(router.no_route_drops(), 1u);
}

TEST(RouterTest, DefaultRouteAsFallback) {
  Router router("r");
  CollectingSink specific;
  CollectingSink fallback;
  router.add_route(Prefix(Ipv4Address(10, 0, 0, 0), 8), specific);
  router.add_route(Prefix(Ipv4Address(0), 0), fallback);
  Packet p = make_packet(100);
  p.dst = Ipv4Address(8, 8, 8, 8);
  router.receive(p);
  EXPECT_EQ(fallback.packets.size(), 1u);
  EXPECT_TRUE(specific.packets.empty());
}

TEST(RouterTest, LookupReturnsNullWithoutRoutes) {
  Router router("r");
  EXPECT_EQ(router.lookup(Ipv4Address(1, 2, 3, 4)), nullptr);
}

}  // namespace
}  // namespace riptide::net

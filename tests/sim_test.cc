#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "stats/summary.h"

namespace riptide::sim {
namespace {

// ------------------------------------------------------------------- Time

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Time::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Time::milliseconds(3).ns(), 3'000'000);
  EXPECT_EQ(Time::microseconds(5).ns(), 5'000);
  EXPECT_EQ(Time::minutes(2), Time::seconds(120));
  EXPECT_EQ(Time::hours(1), Time::minutes(60));
}

TEST(TimeTest, FractionalConstructors) {
  EXPECT_EQ(Time::from_seconds(0.5), Time::milliseconds(500));
  EXPECT_EQ(Time::from_milliseconds(1.5), Time::microseconds(1500));
}

TEST(TimeTest, Arithmetic) {
  const Time a = Time::milliseconds(10);
  const Time b = Time::milliseconds(4);
  EXPECT_EQ(a + b, Time::milliseconds(14));
  EXPECT_EQ(a - b, Time::milliseconds(6));
  EXPECT_EQ(a * 3, Time::milliseconds(30));
  EXPECT_EQ(a / 2, Time::milliseconds(5));
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(TimeTest, ComparisonAndAccessors) {
  EXPECT_LT(Time::zero(), Time::nanoseconds(1));
  EXPECT_DOUBLE_EQ(Time::milliseconds(250).to_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Time::microseconds(1500).to_milliseconds(), 1.5);
}

TEST(TimeTest, NegativeDifferencesRepresentable) {
  const Time d = Time::zero() - Time::seconds(1);
  EXPECT_LT(d, Time::zero());
  EXPECT_EQ(d.ns(), -1'000'000'000);
}

// -------------------------------------------------------------- Simulator

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(Time::milliseconds(20), [&] { order.push_back(2); });
  sim.schedule(Time::milliseconds(10), [&] { order.push_back(1); });
  sim.schedule(Time::milliseconds(30), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EqualTimestampsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(Time::milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator sim;
  Time seen;
  sim.schedule(Time::milliseconds(7), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, Time::milliseconds(7));
}

TEST(SimulatorTest, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(Time::zero() - Time::seconds(1), [] {}),
               std::invalid_argument);
}

TEST(SimulatorTest, ScheduleAtPastThrows) {
  Simulator sim;
  sim.schedule(Time::seconds(2), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(Time::seconds(1), [] {}),
               std::invalid_argument);
}

TEST(SimulatorTest, CancelledEventDoesNotRun) {
  Simulator sim;
  bool ran = false;
  auto handle = sim.schedule(Time::seconds(1), [&] { ran = true; });
  handle.cancel();
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule(Time::seconds(1), [&] { ++count; });
  sim.schedule(Time::seconds(5), [&] { ++count; });
  sim.run_until(Time::seconds(2));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), Time::seconds(2));
  sim.run_until(Time::seconds(10));
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, EventsExactlyAtDeadlineRun) {
  Simulator sim;
  bool ran = false;
  sim.schedule(Time::seconds(2), [&] { ran = true; });
  sim.run_until(Time::seconds(2));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, NestedSchedulingFromCallback) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(Time::seconds(1), [&] {
    order.push_back(1);
    sim.schedule(Time::seconds(1), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), Time::seconds(2));
}

TEST(SimulatorTest, PeriodicFiresRepeatedlyUntilCancelled) {
  Simulator sim;
  int fires = 0;
  auto handle = sim.schedule_periodic(Time::seconds(1), Time::seconds(1),
                                      [&] { ++fires; });
  sim.run_until(Time::seconds(5));
  EXPECT_EQ(fires, 5);
  handle.cancel();
  sim.run_until(Time::seconds(10));
  EXPECT_EQ(fires, 5);
}

TEST(SimulatorTest, PeriodicInitialDelayIndependentOfInterval) {
  Simulator sim;
  std::vector<Time> at;
  sim.schedule_periodic(Time::zero(), Time::seconds(2),
                        [&] { at.push_back(sim.now()); });
  sim.run_until(Time::seconds(5));
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], Time::zero());
  EXPECT_EQ(at[1], Time::seconds(2));
  EXPECT_EQ(at[2], Time::seconds(4));
}

TEST(SimulatorTest, PeriodicZeroIntervalThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_periodic(Time::zero(), Time::zero(), [] {}),
               std::invalid_argument);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_periodic(Time::seconds(1), Time::seconds(1), [&] {
    if (++count == 3) sim.stop();
  });
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 4; ++i) sim.schedule(Time::seconds(i + 1), [] {});
  EXPECT_EQ(sim.pending_events(), 4u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 4u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// ----------------------------------------------- slab + handle lifecycle

TEST(SimulatorTest, HandleInvalidAfterOneShotFires) {
  Simulator sim;
  auto handle = sim.schedule(Time::seconds(1), [] {});
  EXPECT_TRUE(handle.valid());
  sim.run();
  EXPECT_FALSE(handle.valid());
  handle.cancel();  // must be a harmless no-op
}

TEST(SimulatorTest, StaleHandleDoesNotCancelSlotReuser) {
  Simulator sim;
  bool second_ran = false;
  auto first = sim.schedule(Time::seconds(1), [] {});
  first.cancel();
  // The freed slot is reused (bumped generation) by the next schedule.
  auto second = sim.schedule(Time::seconds(2), [&] { second_ran = true; });
  EXPECT_FALSE(first.valid());
  first.cancel();  // stale: generation mismatch, must not touch `second`
  EXPECT_TRUE(second.valid());
  sim.run();
  EXPECT_TRUE(second_ran);
}

TEST(SimulatorTest, CancelInsideOwnPeriodicCallback) {
  Simulator sim;
  int fires = 0;
  EventHandle handle;
  handle = sim.schedule_periodic(Time::seconds(1), Time::seconds(1), [&] {
    if (++fires == 3) handle.cancel();
  });
  sim.run_until(Time::seconds(10));
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(handle.valid());
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.live_events(), 0u);
}

TEST(SimulatorTest, CancelOtherEventFromCallback) {
  Simulator sim;
  bool victim_ran = false;
  auto victim = sim.schedule(Time::seconds(2), [&] { victim_ran = true; });
  sim.schedule(Time::seconds(1), [&] { victim.cancel(); });
  sim.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, MoveOnlyCallbackCapture) {
  Simulator sim;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  sim.schedule(Time::seconds(1),
               [p = std::move(payload), &seen] { seen = *p; });
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(SimulatorTest, ThrowingCallbackReleasesSlotAndPropagates) {
  Simulator sim;
  sim.schedule(Time::seconds(1), [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(sim.run(), std::runtime_error);
  EXPECT_EQ(sim.live_events(), 0u);
}

// Regression for the cancelled-timer leak: a connection-heavy workload
// schedules and immediately cancels millions of RTO-style timers. Lazy
// cancellation must not let the dead entries accumulate — compaction has
// to keep the queue proportional to the *live* event count.
TEST(SimulatorTest, MassCancellationKeepsQueueBounded) {
  Simulator sim;
  constexpr int kTimers = 1'000'000;
  std::size_t peak = 0;
  for (int i = 0; i < kTimers; ++i) {
    auto h = sim.schedule(Time::seconds(100), [] {});
    h.cancel();
    peak = std::max(peak, sim.pending_events());
  }
  // One live event would make the bound 2*(1)+64; with zero live events
  // the compaction threshold alone caps the queue.
  EXPECT_LE(sim.pending_events(), 128u);
  EXPECT_LE(peak, 128u);
  EXPECT_EQ(sim.live_events(), 0u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, MassCancellationWithLiveEventsStaysProportional) {
  Simulator sim;
  constexpr int kLive = 100;
  for (int i = 0; i < kLive; ++i) {
    sim.schedule(Time::seconds(1 + i), [] {});
  }
  for (int i = 0; i < 100'000; ++i) {
    auto h = sim.schedule(Time::seconds(200), [] {});
    h.cancel();
  }
  // Bound: cancelled <= live + compact threshold.
  EXPECT_LE(sim.pending_events(), 2u * kLive + 64u);
  EXPECT_EQ(sim.live_events(), static_cast<std::size_t>(kLive));
  sim.run();
  EXPECT_EQ(sim.events_executed(), static_cast<std::uint64_t>(kLive));
}

TEST(SimulatorTest, RearmPatternManyGenerations) {
  Simulator sim;
  EventHandle rto;
  int fired = 0;
  for (int i = 0; i < 50'000; ++i) {
    rto.cancel();
    rto = sim.schedule(Time::milliseconds(200), [&] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 1);  // only the last armed timer fires
}

// ----------------------------------------------------------------Callback

TEST(CallbackTest, SmallCaptureStoredInline) {
  int x = 0;
  Callback cb([&x] { ++x; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  EXPECT_EQ(x, 1);
}

TEST(CallbackTest, LargeCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 32> big{};  // 256 bytes, exceeds the buffer
  big[31] = 7;
  std::uint64_t seen = 0;
  Callback cb([big, &seen] { seen = big[31]; });
  cb();
  EXPECT_EQ(seen, 7u);
}

TEST(CallbackTest, MovePreservesTarget) {
  int calls = 0;
  Callback a([&calls] { ++calls; });
  Callback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  b();
  Callback c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(calls, 2);
}

TEST(CallbackTest, DestructorRunsCapturedState) {
  auto counter = std::make_shared<int>(0);
  {
    Callback cb([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);  // capture destroyed with the callback
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform(0, 1) != b.uniform(0, 1)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    if (v == 0) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  stats::Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(5.0, 1.5), 5.0);
  }
}

TEST(RngTest, ParetoRejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(99);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  // Distinct salts should produce distinct streams.
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    if (child1.uniform(0, 1) != child2.uniform(0, 1)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

}  // namespace
}  // namespace riptide::sim

// SACK-enhanced loss recovery tests: receiver-side block generation,
// sender-side scoreboard retransmission, and post-RTO hole skipping.

#include <gtest/gtest.h>

#include "tcp/receive_tracker.h"
#include "test_util.h"

namespace riptide::tcp {
namespace {

using riptide::test::TwoHostNet;
using sim::Time;

TcpConfig sack_config() {
  TcpConfig config;
  config.sack = true;
  return config;
}

// Server pushing `bytes` to the client over a lossy-able path.
struct PushWorld {
  explicit PushWorld(TcpConfig config)
      : net(Time::milliseconds(40), 1e9, config) {
    net.b.listen(80, [this](TcpConnection& conn) {
      server_conn = &conn;
      TcpConnection::Callbacks cbs;
      cbs.on_peer_closed = [&conn] { conn.close(); };
      conn.set_callbacks(std::move(cbs));
    });
    TcpConnection::Callbacks cbs;
    cbs.on_data = [this](std::uint64_t n) { received += n; };
    client_conn = &net.a.connect(net.b.address(), 80, std::move(cbs));
    net.sim.run_until(Time::milliseconds(150));
  }

  void push_from_server(std::uint64_t bytes) {
    server_conn->send(bytes);
  }

  TwoHostNet net;
  TcpConnection* client_conn = nullptr;
  TcpConnection* server_conn = nullptr;
  std::uint64_t received = 0;
};

TEST(ReceiveTrackerSackTest, IntervalsExposedInOrder) {
  ReceiveTracker t(0);
  t.on_segment(100, 200);
  t.on_segment(400, 500);
  t.on_segment(700, 800);
  const auto blocks = t.intervals(2);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].first, 100u);
  EXPECT_EQ(blocks[0].second, 200u);
  EXPECT_EQ(blocks[1].first, 400u);
  EXPECT_EQ(blocks[1].second, 500u);
  EXPECT_EQ(t.intervals(10).size(), 3u);
}

TEST(SackTest, AckCarriesBlocksOnlyWhenEnabled) {
  // With SACK on, a hole at the receiver produces blocks on the wire.
  PushWorld world(sack_config());
  int acks_with_blocks = 0;
  world.net.filter_ab.set_drop_predicate([&](const net::Packet& p) {
    const auto* seg = dynamic_cast<const Segment*>(p.payload.get());
    if (seg != nullptr && !seg->sack_blocks.empty()) ++acks_with_blocks;
    return false;
  });
  world.net.filter_ba.drop_next_data_packets(1);
  world.push_from_server(60'000);
  world.net.sim.run_until(Time::seconds(5));
  EXPECT_EQ(world.received, 60'000u);
  EXPECT_GT(acks_with_blocks, 0);
}

TEST(SackTest, NoBlocksWhenDisabled) {
  PushWorld world(TcpConfig{});
  int acks_with_blocks = 0;
  world.net.filter_ab.set_drop_predicate([&](const net::Packet& p) {
    const auto* seg = dynamic_cast<const Segment*>(p.payload.get());
    if (seg != nullptr && !seg->sack_blocks.empty()) ++acks_with_blocks;
    return false;
  });
  world.net.filter_ba.drop_next_data_packets(1);
  world.push_from_server(60'000);
  world.net.sim.run_until(Time::seconds(5));
  EXPECT_EQ(world.received, 60'000u);
  EXPECT_EQ(acks_with_blocks, 0);
}

TEST(SackTest, AtMostThreeBlocksAdvertised) {
  ReceiveTracker t(0);
  for (int i = 1; i <= 6; ++i) {
    t.on_segment(static_cast<std::uint64_t>(i) * 200,
                 static_cast<std::uint64_t>(i) * 200 + 100);
  }
  EXPECT_EQ(t.intervals(3).size(), 3u);
}

TEST(SackTest, SingleLossRetransmittedExactlyOnce) {
  PushWorld world(sack_config());
  world.net.filter_ba.drop_next_data_packets(1);
  world.push_from_server(100'000);
  world.net.sim.run_until(Time::seconds(10));
  EXPECT_EQ(world.received, 100'000u);
  EXPECT_EQ(world.server_conn->stats().retransmissions, 1u);
  EXPECT_EQ(world.server_conn->stats().timeouts, 0u);
}

TEST(SackTest, ScoreboardDrainsAfterRecovery) {
  PushWorld world(sack_config());
  world.net.filter_ba.drop_next_data_packets(1);
  world.push_from_server(100'000);
  world.net.sim.run_until(Time::seconds(10));
  EXPECT_EQ(world.server_conn->sack_scoreboard_intervals(), 0u);
}

TEST(SackTest, MultipleHolesInOneWindowRecoverWithoutRto) {
  // Drop two non-adjacent segments of the same flight: plain NewReno needs
  // a partial-ACK round trip per hole; SACK retransmits the precise holes.
  PushWorld world(sack_config());
  int data_seen = 0;
  world.net.filter_ba.set_drop_predicate([&](const net::Packet& p) {
    const auto* seg = dynamic_cast<const Segment*>(p.payload.get());
    if (seg == nullptr || seg->payload_bytes == 0) return false;
    ++data_seen;
    return data_seen == 2 || data_seen == 5;  // two holes
  });
  world.push_from_server(100'000);
  world.net.sim.run_until(Time::seconds(10));
  EXPECT_EQ(world.received, 100'000u);
  EXPECT_EQ(world.server_conn->stats().timeouts, 0u);
  EXPECT_LE(world.server_conn->stats().retransmissions, 4u);
}

TEST(SackTest, PostRtoGoBackNSkipsPeerHeldRanges) {
  // Lose a prefix of the flight but let the tail through: after the RTO
  // the sender must not resend the tail the peer already SACKed.
  PushWorld world(sack_config());
  int data_seen = 0;
  world.net.filter_ba.set_drop_predicate([&](const net::Packet& p) {
    const auto* seg = dynamic_cast<const Segment*>(p.payload.get());
    if (seg == nullptr || seg->payload_bytes == 0) return false;
    ++data_seen;
    return data_seen <= 2;  // first two data segments lost (incl. the two
                            // fast-retransmit attempts' predecessors)
  });
  world.push_from_server(30'000);
  world.net.sim.run_until(Time::seconds(20));
  EXPECT_EQ(world.received, 30'000u);

  // 30 KB = 21 segments; two were lost. Without SACK skipping, a go-back-N
  // would resend most of the window; with it, retransmissions stay small.
  EXPECT_LE(world.server_conn->stats().retransmissions, 6u);
}

TEST(SackTest, LossyPathDeliversExactlyOnceWithSack) {
  auto config = sack_config();
  TwoHostNet net(Time::milliseconds(20), 1e9, config);
  sim::Rng loss_rng(99);
  net.filter_ba.set_drop_predicate(
      [&](const net::Packet&) { return loss_rng.bernoulli(0.03); });

  std::uint64_t received = 0;
  net.a.listen(80, [&](TcpConnection& conn) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](std::uint64_t n) { received += n; };
    conn.set_callbacks(std::move(cbs));
  });
  TcpConnection::Callbacks cbs;
  auto& conn = net.b.connect(net.a.address(), 80, std::move(cbs));
  net.sim.run_until(Time::seconds(5));
  ASSERT_TRUE(conn.established());
  conn.send(500'000);
  net.sim.run_until(Time::minutes(3));
  EXPECT_EQ(received, 500'000u);
}

TEST(SackTest, SackFasterThanNewRenoUnderMultipleLoss) {
  auto run = [](bool sack) {
    TcpConfig config;
    config.sack = sack;
    PushWorld world(config);
    int data_seen = 0;
    world.net.filter_ba.set_drop_predicate([&](const net::Packet& p) {
      const auto* seg = dynamic_cast<const Segment*>(p.payload.get());
      if (seg == nullptr || seg->payload_bytes == 0) return false;
      ++data_seen;
      return data_seen % 7 == 3 && data_seen < 60;  // periodic early losses
    });
    const Time start = world.net.sim.now();
    world.push_from_server(150'000);
    while (world.received < 150'000 &&
           world.net.sim.now() < start + Time::minutes(2)) {
      world.net.sim.run_until(world.net.sim.now() + Time::milliseconds(100));
    }
    return world.net.sim.now() - start;
  };
  const Time with_sack = run(true);
  const Time without = run(false);
  EXPECT_LE(with_sack, without);
}

}  // namespace
}  // namespace riptide::tcp

// Sharded-simulation unit and integration tests: topology partitioning,
// the conservative window engine (sim::ShardSet), shard-boundary packet
// transport (net::WireChannel/WireFabric), fluid cross-traffic coupling
// (flow::FlowLevelLoad -> net::Link background load), and the sharded
// cdn::Experiment wiring. The fingerprint-level invariants live in
// determinism_test.cc; these tests pin the mechanisms underneath them.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "cdn/experiment.h"
#include "cdn/geo.h"
#include "cdn/partition.h"
#include "cdn/pops.h"
#include "cdn/topology.h"
#include "flow/flow_traffic.h"
#include "net/link.h"
#include "net/wire.h"
#include "sim/random.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "stats/perf.h"

namespace riptide {
namespace {

using sim::Time;

std::vector<cdn::PopSpec> four_pops() {
  return {{"lon", cdn::Continent::kEurope, {51.51, -0.13}},
          {"fra", cdn::Continent::kEurope, {50.11, 8.68}},
          {"nyc", cdn::Continent::kNorthAmerica, {40.71, -74.01}},
          {"tyo", cdn::Continent::kAsia, {35.68, 139.69}}};
}

// -- Partitioning --

TEST(PartitionTest, EveryPopInExactlyOneCellAndWorker) {
  const auto specs = four_pops();
  const auto part = cdn::partition_pops(specs, 1.5, 2);
  ASSERT_EQ(part.cells, specs.size());
  ASSERT_EQ(part.cell_of_pop.size(), specs.size());
  ASSERT_EQ(part.worker_of_cell.size(), specs.size());

  // Cells are exhaustive and disjoint over PoPs.
  std::set<std::size_t> seen(part.cell_of_pop.begin(),
                             part.cell_of_pop.end());
  EXPECT_EQ(seen.size(), specs.size());

  // Every cell lands on exactly one valid worker, and the per-worker cell
  // lists partition the cell set.
  std::set<std::size_t> covered;
  for (std::size_t w = 0; w < part.workers; ++w) {
    for (std::size_t c : part.cells_of_worker(w)) {
      EXPECT_EQ(part.worker_of_cell[c], w);
      EXPECT_TRUE(covered.insert(c).second) << "cell " << c << " owned twice";
    }
  }
  EXPECT_EQ(covered.size(), part.cells);
}

TEST(PartitionTest, LookaheadIsMinimumCrossCellDelay) {
  const auto specs = four_pops();
  const double inflation = 1.5;
  const auto part = cdn::partition_pops(specs, inflation, 4);

  Time min_delay = Time::hours(1);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = 0; j < specs.size(); ++j) {
      if (i == j) continue;
      min_delay = std::min(min_delay,
                           cdn::propagation_delay(specs[i].location,
                                                  specs[j].location,
                                                  inflation));
    }
  }
  EXPECT_EQ(part.lookahead, min_delay);
  EXPECT_GT(part.lookahead, Time::zero());
}

TEST(PartitionTest, LookaheadIndependentOfWorkerCount) {
  // The window length must depend only on the topology, never on --shards,
  // or the barrier timestamps (and thus the fingerprint) would move.
  const auto specs = four_pops();
  const auto one = cdn::partition_pops(specs, 1.5, 1);
  const auto four = cdn::partition_pops(specs, 1.5, 4);
  EXPECT_EQ(one.lookahead, four.lookahead);
}

TEST(PartitionTest, DegenerateOnePopWorld) {
  const std::vector<cdn::PopSpec> solo = {
      {"lon", cdn::Continent::kEurope, {51.51, -0.13}}};
  const auto part = cdn::partition_pops(solo, 1.5, 1);
  EXPECT_EQ(part.cells, 1u);
  EXPECT_EQ(part.workers, 1u);
  EXPECT_GT(part.lookahead, Time::zero());
}

TEST(PartitionTest, RejectsBadWorkerCounts) {
  const auto specs = four_pops();
  EXPECT_THROW(cdn::partition_pops(specs, 1.5, 0), std::invalid_argument);
  EXPECT_THROW(cdn::partition_pops(specs, 1.5, 5), std::invalid_argument);
  EXPECT_THROW(cdn::partition_pops({}, 1.5, 1), std::invalid_argument);
}

TEST(PartitionTest, RejectsColocatedPops) {
  const std::vector<cdn::PopSpec> twins = {
      {"a", cdn::Continent::kEurope, {51.51, -0.13}},
      {"b", cdn::Continent::kEurope, {51.51, -0.13}}};
  EXPECT_THROW(cdn::partition_pops(twins, 1.5, 2), std::invalid_argument);
}

// -- ShardSet window engine --

TEST(ShardSetTest, RunsCellsToDeadline) {
  sim::ShardSet shards(3, 2, Time::milliseconds(5));
  std::vector<int> fired(3, 0);
  for (std::size_t c = 0; c < 3; ++c) {
    shards.cell(c).schedule(Time::milliseconds(7 + 3 * c),
                            [&fired, c] { ++fired[c]; });
  }
  const std::uint64_t ran = shards.run_until(Time::milliseconds(50));
  EXPECT_EQ(ran, 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(fired[c], 1) << "cell " << c;
    EXPECT_EQ(shards.cell(c).now(), Time::milliseconds(50));
  }
}

TEST(ShardSetTest, FixedCellToWorkerMapping) {
  sim::ShardSet shards(5, 2, Time::milliseconds(1));
  EXPECT_EQ(shards.worker_of(0), 0u);
  EXPECT_EQ(shards.worker_of(1), 1u);
  EXPECT_EQ(shards.worker_of(2), 0u);
  EXPECT_EQ(shards.worker_of(4), 0u);
}

TEST(ShardSetTest, FlushHookRunsBeforeEachWindow) {
  // A flush hook that injects one event per window for the first three
  // windows; all injected events must execute.
  sim::ShardSet shards(2, 1, Time::milliseconds(10));
  int injected = 0;
  int executed = 0;
  shards.set_flush_hook([&](std::size_t cell, sim::Simulator& sim) {
    if (cell == 0 && injected < 3) {
      ++injected;
      sim.schedule(Time::milliseconds(1), [&executed] { ++executed; });
    }
  });
  shards.run_until(Time::milliseconds(100));
  EXPECT_EQ(injected, 3);
  EXPECT_EQ(executed, 3);
}

TEST(ShardSetTest, CellScopeWrapsCellWork) {
  sim::ShardSet shards(2, 2, Time::milliseconds(10));
  std::atomic<int> scoped_runs{0};
  shards.set_cell_scope(
      [&](std::size_t, const std::function<void()>& body) {
        ++scoped_runs;
        body();
      });
  bool fired = false;
  shards.cell(1).schedule(Time::milliseconds(5), [&fired] { fired = true; });
  shards.run_until(Time::milliseconds(10));
  EXPECT_TRUE(fired);
  EXPECT_GT(scoped_runs.load(), 0);
}

TEST(ShardSetTest, PropagatesCellExceptions) {
  sim::ShardSet shards(2, 2, Time::milliseconds(10));
  shards.cell(1).schedule(Time::milliseconds(5),
                          [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(shards.run_until(Time::seconds(1)), std::runtime_error);
}

TEST(ShardSetTest, CountsWindows) {
  const perf::Counters before = perf::local();
  sim::ShardSet shards(2, 1, Time::milliseconds(10));
  shards.run_until(Time::milliseconds(100));
  const perf::Counters delta = perf::local().delta_since(before);
  EXPECT_EQ(delta.shard_windows, 10u);
}

TEST(ShardSetTest, RejectsBadGeometry) {
  EXPECT_THROW(sim::ShardSet(0, 1, Time::milliseconds(1)),
               std::invalid_argument);
  EXPECT_THROW(sim::ShardSet(2, 3, Time::milliseconds(1)),
               std::invalid_argument);
  EXPECT_THROW(sim::ShardSet(2, 1, Time::zero()), std::invalid_argument);
}

// -- Wire channel / fabric --

struct Collector : net::PacketSink {
  std::vector<net::Packet> received;
  void receive(const net::Packet& packet) override {
    received.push_back(packet);
  }
};

TEST(WireChannelTest, DeliversAtExactTimestamp) {
  sim::Simulator sim;
  Collector sink;
  net::WireChannel channel;
  channel.set_sink(&sink);

  net::Packet packet;
  packet.src = net::Ipv4Address(10, 0, 0, 1);
  packet.dst = net::Ipv4Address(10, 1, 0, 1);
  packet.size_bytes = 1500;
  channel.push(Time::milliseconds(25), packet);
  EXPECT_EQ(channel.size(), 1u);

  channel.flush_into(sim);
  EXPECT_TRUE(channel.empty());
  sim.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sim.now(), Time::milliseconds(25));
  EXPECT_EQ(sink.received[0].size_bytes, 1500u);
}

TEST(WireChannelTest, ClonesPayloadByValue) {
  // The wire copy must be a fresh heap object (no pool affiliation), so
  // the source-side reference can drop without the destination noticing.
  sim::Simulator sim;
  Collector sink;
  net::WireChannel channel;
  channel.set_sink(&sink);

  auto* payload = new net::Payload(net::Payload::kOpaqueKind);
  net::Packet packet;
  packet.size_bytes = 99;
  packet.payload = net::PayloadRef(payload);

  EXPECT_THROW(channel.push(Time::milliseconds(1), packet), std::logic_error)
      << "base Payload cannot cross a shard boundary";
}

TEST(WireFabricTest, FlushesAscendingSourceOrder) {
  sim::Simulator sim;
  Collector sink;
  net::WireFabric fabric(3);
  for (std::size_t src : {0u, 2u}) {
    fabric.channel(src, 1).set_sink(&sink);
  }
  // Same timestamp from two sources: ascending-source flush order decides
  // the sequence numbers, so source 0's packet must arrive first.
  net::Packet from2;
  from2.size_bytes = 2;
  net::Packet from0;
  from0.size_bytes = 0;
  fabric.channel(2, 1).push(Time::milliseconds(5), from2);
  fabric.channel(0, 1).push(Time::milliseconds(5), from0);

  fabric.flush_to(1, sim);
  sim.run();
  ASSERT_EQ(sink.received.size(), 2u);
  EXPECT_EQ(sink.received[0].size_bytes, 0u);
  EXPECT_EQ(sink.received[1].size_bytes, 2u);
  EXPECT_EQ(fabric.total_pushed(), 2u);
}

// -- Link: remote delivery and background load --

TEST(LinkShardTest, RemoteDeliveryGoesThroughChannel) {
  sim::Simulator src_sim;
  sim::Simulator dst_sim;
  Collector local_sink;
  Collector remote_sink;
  net::Link::Config cfg;
  cfg.rate_bps = 8e9;  // 1 byte/ns
  cfg.propagation_delay = Time::milliseconds(10);
  net::Link link(src_sim, cfg, local_sink);

  net::WireChannel channel;
  channel.set_sink(&remote_sink);
  link.set_remote_delivery(&channel);
  EXPECT_TRUE(link.is_shard_boundary());

  net::Packet packet;
  packet.size_bytes = 1000;
  link.receive(packet);
  src_sim.run();

  EXPECT_TRUE(local_sink.received.empty())
      << "boundary link must not deliver locally";
  ASSERT_EQ(channel.size(), 1u);
  EXPECT_EQ(link.stats().packets_delivered, 1u);

  channel.flush_into(dst_sim);
  dst_sim.run();
  ASSERT_EQ(remote_sink.received.size(), 1u);
  // Serialization (1000 ns) + propagation (10 ms), on the receiving clock.
  EXPECT_EQ(dst_sim.now(), Time::milliseconds(10) + Time::nanoseconds(1000));
}

TEST(LinkShardTest, BackgroundLoadSlowsSerialization) {
  sim::Simulator sim;
  Collector sink;
  net::Link::Config cfg;
  cfg.rate_bps = 1e9;
  net::Link link(sim, cfg, sink);

  const Time clean = link.transmission_time(1500);
  link.set_background_load(0.5e9, 0);  // half the pipe is fluid
  const Time loaded = link.transmission_time(1500);
  EXPECT_EQ(loaded, 2 * clean);

  // Saturating aggregate: floored at 1% residual, not infinite.
  link.set_background_load(2e9, 0);
  EXPECT_EQ(link.transmission_time(1500), 100 * clean);

  // Clearing restores the bit-identical clean path.
  link.set_background_load(0.0, 0);
  EXPECT_EQ(link.transmission_time(1500), clean);
}

TEST(LinkShardTest, BackgroundQueueShrinksBuffer) {
  sim::Simulator sim;
  Collector sink;
  net::Link::Config cfg;
  cfg.rate_bps = 8e6;  // 1 byte/us: packets serialize slowly
  cfg.queue_packets = 4;
  net::Link link(sim, cfg, sink);

  link.set_background_load(0.0, 3);  // fluid occupies 3 of 4 slots
  net::Packet packet;
  packet.size_bytes = 1000;
  for (int i = 0; i < 3; ++i) link.receive(packet);
  EXPECT_EQ(link.stats().drops_queue_full, 2u)
      << "only one residual slot should admit";

  // Occupancy beyond the buffer still leaves one usable slot.
  sim.run();
  link.set_background_load(0.0, 99);
  link.receive(packet);
  EXPECT_EQ(link.stats().drops_queue_full, 2u);
}

// -- Flow-level cross traffic --

TEST(FlowLevelLoadTest, AppliesAndReleasesLoad) {
  sim::Simulator sim;
  Collector sink;
  net::Link::Config cfg;
  cfg.rate_bps = 10e9;
  net::Link link(sim, cfg, sink);
  sim::Rng rng(7);

  flow::FlowTrafficConfig fcfg;
  fcfg.flows_per_second = 50.0;
  fcfg.mean_flow_bytes = 100e3;
  flow::FlowLevelLoad load(sim, link, fcfg, rng);
  load.start();

  sim.run_until(Time::seconds(5));
  EXPECT_GT(load.flows_started(), 100u);
  EXPECT_GT(load.flows_completed(), 0u);
  EXPECT_LE(load.offered_bps(), fcfg.max_utilization * cfg.rate_bps + 1.0);
  EXPECT_EQ(load.flows_started() - load.flows_completed(),
            load.active_flows());
}

TEST(FlowLevelLoadTest, EventCountFarBelowPacketLevel) {
  // The headline claim: ~2 events per background flow (arrival +
  // completion), plus timer rearms folded into those, versus ~40 for a
  // packet-level TCP transfer of the same size.
  sim::Simulator sim;
  Collector sink;
  net::Link::Config cfg;
  cfg.rate_bps = 10e9;
  net::Link link(sim, cfg, sink);
  sim::Rng rng(11);

  flow::FlowTrafficConfig fcfg;
  fcfg.flows_per_second = 1000.0;
  flow::FlowLevelLoad load(sim, link, fcfg, rng);
  load.start();
  const std::uint64_t events = sim.run_until(Time::seconds(10));
  ASSERT_GT(load.flows_started(), 5000u);
  EXPECT_LT(static_cast<double>(events) /
                static_cast<double>(load.flows_started()),
            2.5);
}

TEST(FlowLevelLoadTest, CountsFlowsInPerf) {
  const perf::Counters before = perf::local();
  sim::Simulator sim;
  Collector sink;
  net::Link link(sim, net::Link::Config{}, sink);
  sim::Rng rng(3);
  flow::FlowTrafficConfig fcfg;
  fcfg.flows_per_second = 100.0;
  flow::FlowLevelLoad load(sim, link, fcfg, rng);
  load.start();
  sim.run_until(Time::seconds(2));
  const perf::Counters delta = perf::local().delta_since(before);
  EXPECT_EQ(delta.flow_level_flows, load.flows_started());
}

TEST(FlowLevelLoadTest, RejectsBadConfig) {
  sim::Simulator sim;
  Collector sink;
  net::Link link(sim, net::Link::Config{}, sink);
  sim::Rng rng(1);
  flow::FlowTrafficConfig bad;
  bad.pareto_alpha = 0.9;  // no finite mean
  EXPECT_THROW(flow::FlowLevelLoad(sim, link, bad, rng),
               std::invalid_argument);
}

// -- Sharded topology wiring --

TEST(ShardedTopologyTest, WanLinksAreSymmetricBoundaries) {
  const auto specs = four_pops();
  const auto part = cdn::partition_pops(specs, 1.5, 2);
  sim::ShardSet shards(part.cells, part.workers, part.lookahead);
  net::WireFabric fabric(part.cells);
  cdn::TopologyConfig config;
  config.hosts_per_pop = 1;
  cdn::Topology topo(shards, fabric, config, specs);

  ASSERT_TRUE(topo.sharded());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = 0; j < specs.size(); ++j) {
      if (i == j) continue;
      // Every WAN link crosses cells, in both directions.
      EXPECT_TRUE(topo.wan_link(i, j).is_shard_boundary());
      EXPECT_EQ(topo.wan_link(i, j).is_shard_boundary(),
                topo.wan_link(j, i).is_shard_boundary());
      EXPECT_EQ(fabric.channel(i, j).sink(), topo.pops()[j].router);
    }
  }
  // Each PoP's cell is a distinct simulator; hosts/LAN stay inside it.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(&topo.cell_sim(i), &shards.cell(i));
  }
}

TEST(ShardedTopologyTest, RejectsMismatchedCellCount) {
  const auto specs = four_pops();
  sim::ShardSet shards(2, 1, Time::milliseconds(1));
  net::WireFabric fabric(2);
  cdn::TopologyConfig config;
  EXPECT_THROW(cdn::Topology(shards, fabric, config, specs),
               std::invalid_argument);
}

// -- Sharded experiment integration --

cdn::ExperimentConfig small_sharded_config(std::size_t shards) {
  cdn::ExperimentConfig config;
  config.pop_specs = {{"lon", cdn::Continent::kEurope, {51.51, -0.13}},
                      {"fra", cdn::Continent::kEurope, {50.11, 8.68}},
                      {"nyc", cdn::Continent::kNorthAmerica, {40.71, -74.01}},
                      {"tyo", cdn::Continent::kAsia, {35.68, 139.69}}};
  config.topology.hosts_per_pop = 1;
  config.topology.seed = 42;
  config.seed = 42;
  config.probe.interval = Time::seconds(5);
  config.duration = Time::seconds(30);
  config.sharding.enabled = true;
  config.sharding.shards = shards;
  return config;
}

TEST(ShardedExperimentTest, ProducesProbeMetrics) {
  cdn::Experiment exp(small_sharded_config(2));
  ASSERT_TRUE(exp.sharded());
  exp.run();
  EXPECT_GT(exp.metrics().flow_count(), 0u)
      << "probes must complete across shard boundaries";
  EXPECT_EQ(exp.simulator().now(), Time::seconds(30));
  // Probes from every source PoP completed (the mesh spans all cells).
  std::set<int> src_pops;
  for (const auto& f : exp.metrics().flows()) src_pops.insert(f.src_pop);
  EXPECT_EQ(src_pops.size(), 4u);
}

TEST(ShardedExperimentTest, NoPooledSegmentEscapes) {
  // The drain-at-exit contract: after a sharded run, no worker left live
  // segments behind (the debug assert in drop_pending enforces this on
  // the workers; the caller-side gauge double-checks from outside).
  cdn::Experiment exp(small_sharded_config(4));
  exp.run();
  EXPECT_EQ(perf::local().segment_pool_live, 0u)
      << "segments leaked out of a worker thread's pool";
}

TEST(ShardedExperimentTest, SecondRunThrows) {
  cdn::Experiment exp(small_sharded_config(2));
  exp.run();
  EXPECT_THROW(exp.run(), std::logic_error);
}

TEST(ShardedExperimentTest, RejectsBadShardCounts) {
  auto config = small_sharded_config(5);  // > pop count
  EXPECT_THROW(cdn::Experiment exp(config), std::invalid_argument);
  config.sharding.shards = 0;
  EXPECT_THROW(cdn::Experiment exp(config), std::invalid_argument);
}

TEST(ShardedExperimentTest, RejectsInjectionFactories) {
  auto config = small_sharded_config(2);
  config.extension_factory = [](cdn::Experiment&) {
    return std::shared_ptr<void>();
  };
  EXPECT_THROW(cdn::Experiment exp(config), std::invalid_argument);
}

}  // namespace
}  // namespace riptide

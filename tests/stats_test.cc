#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/cdf.h"
#include "stats/ewma.h"
#include "stats/histogram.h"
#include "stats/summary.h"

namespace riptide::stats {
namespace {

// ------------------------------------------------------------------- Ewma

TEST(EwmaTest, FirstObservationSeedsDirectly) {
  Ewma ewma(0.9);
  EXPECT_FALSE(ewma.has_value());
  EXPECT_DOUBLE_EQ(ewma.update(50.0), 50.0);
  EXPECT_TRUE(ewma.has_value());
  EXPECT_DOUBLE_EQ(ewma.value(), 50.0);
}

TEST(EwmaTest, AlphaWeightsHistory) {
  Ewma ewma(0.75);
  ewma.update(100.0);
  // 0.75 * 100 + 0.25 * 0 = 75
  EXPECT_DOUBLE_EQ(ewma.update(0.0), 75.0);
}

TEST(EwmaTest, AlphaZeroIgnoresHistory) {
  Ewma ewma(0.0);
  ewma.update(100.0);
  EXPECT_DOUBLE_EQ(ewma.update(7.0), 7.0);
  EXPECT_DOUBLE_EQ(ewma.update(9.0), 9.0);
}

TEST(EwmaTest, AlphaOneFreezesEstimate) {
  Ewma ewma(1.0);
  ewma.update(42.0);
  EXPECT_DOUBLE_EQ(ewma.update(1000.0), 42.0);
}

TEST(EwmaTest, ResetForgets) {
  Ewma ewma(0.5);
  ewma.update(10.0);
  ewma.reset();
  EXPECT_FALSE(ewma.has_value());
  EXPECT_DOUBLE_EQ(ewma.update(20.0), 20.0);
}

TEST(EwmaTest, ConvergesTowardConstantInput) {
  Ewma ewma(0.5);
  ewma.update(0.0);
  for (int i = 0; i < 40; ++i) ewma.update(80.0);
  EXPECT_NEAR(ewma.value(), 80.0, 1e-6);
}

// -------------------------------------------------------------------- Cdf

TEST(CdfTest, QuantilesOfKnownSamples) {
  Cdf cdf;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(25), 2.0);
}

TEST(CdfTest, QuantileInterpolatesBetweenOrderStatistics) {
  Cdf cdf;
  cdf.add(0.0);
  cdf.add(10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.9), 9.0);
}

TEST(CdfTest, SingleSample) {
  Cdf cdf;
  cdf.add(7.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 7.0);
}

TEST(CdfTest, EmptyThrows) {
  Cdf cdf;
  EXPECT_THROW(cdf.quantile(0.5), std::logic_error);
  EXPECT_THROW(cdf.min(), std::logic_error);
  EXPECT_THROW(cdf.mean(), std::logic_error);
}

TEST(CdfTest, OutOfRangeQuantileThrows) {
  Cdf cdf;
  cdf.add(1.0);
  EXPECT_THROW(cdf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(cdf.quantile(1.1), std::invalid_argument);
}

TEST(CdfTest, FractionAtOrBelow) {
  Cdf cdf;
  for (double v : {1.0, 2.0, 3.0, 4.0}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(100.0), 1.0);
}

TEST(CdfTest, FractionAtOrBelowEmptyIsZero) {
  Cdf cdf;
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.0);
}

TEST(CdfTest, AddAllAndUnsortedInsertion) {
  Cdf cdf;
  cdf.add_all({5.0, 1.0, 3.0});
  cdf.add(2.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_EQ(cdf.count(), 4u);
}

TEST(CdfTest, MeanMatchesArithmeticMean) {
  Cdf cdf;
  cdf.add_all({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(cdf.mean(), 4.0);
}

TEST(CdfTest, CurveIsMonotone) {
  Cdf cdf;
  for (int i = 100; i >= 1; --i) cdf.add(static_cast<double>(i));
  const auto curve = cdf.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
    EXPECT_LT(curve[i - 1].first, curve[i].first);
  }
}

TEST(CdfTest, SummaryStringMentionsCount) {
  Cdf cdf;
  cdf.add(1.0);
  EXPECT_NE(cdf.summary_string().find("n=1"), std::string::npos);
  Cdf empty;
  EXPECT_EQ(empty.summary_string(), "(empty)");
}

// --------------------------------------------------------------- Summary

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.max(), std::logic_error);
  EXPECT_THROW(s.variance(), std::logic_error);
}

TEST(SummaryTest, NegativeValues) {
  Summary s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketsCoverRangeEvenly) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
}

TEST(HistogramTest, SamplesLandInCorrectBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.99);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, UnderflowAndOverflowTracked) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, ModeBucket) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  EXPECT_EQ(h.mode_bucket(), 1u);
}

TEST(HistogramTest, ModeOnEmptyThrows) {
  Histogram h(0.0, 1.0, 1);
  EXPECT_THROW(h.mode_bucket(), std::logic_error);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, RenderShowsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string rendered = h.render(10);
  EXPECT_NE(rendered.find('#'), std::string::npos);
}

}  // namespace
}  // namespace riptide::stats

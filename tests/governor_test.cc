// Safety governor and route reconciliation: the pure decision logic
// (budget scaling, hysteresis, rollback gating, cooldown state machine),
// the agent-level behaviors they drive, reconciliation of externally
// deleted/mangled/orphaned routes, and the end-to-end emergency-rollback
// scenario inside a full experiment.

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "cdn/experiment.h"
#include "cdn/pops.h"
#include "core/agent.h"
#include "core/governor.h"
#include "faults/fault_plan.h"
#include "faults/harness.h"
#include "host/routing_table.h"
#include "net/ipv4.h"
#include "sim/time.h"
#include "test_util.h"

namespace riptide {
namespace {

using core::GovernorConfig;
using core::SafetyGovernor;
using sim::Time;
using test::TwoHostNet;

// ---------------------------------------------------- pure decision logic

TEST(SafetyGovernorTest, ZeroKnobsAreTheIdentityDecisions) {
  SafetyGovernor governor;  // every knob at its default
  EXPECT_FALSE(governor.rollback_enabled());
  EXPECT_DOUBLE_EQ(governor.budget_scale(1e9), 1.0);
  EXPECT_FALSE(governor.within_hysteresis(40, 40));  // equal is reprogrammed
  EXPECT_FALSE(governor.should_rollback(1000, 1000, Time::zero()));
}

TEST(SafetyGovernorTest, BudgetScaleCapsOnlyWhenOverCommitted) {
  SafetyGovernor governor(GovernorConfig{.budget_segments = 100});
  EXPECT_DOUBLE_EQ(governor.budget_scale(50.0), 1.0);
  EXPECT_DOUBLE_EQ(governor.budget_scale(100.0), 1.0);
  EXPECT_DOUBLE_EQ(governor.budget_scale(200.0), 0.5);
  EXPECT_DOUBLE_EQ(governor.budget_scale(400.0), 0.25);
}

TEST(SafetyGovernorTest, HysteresisBandsSmallDeltas) {
  SafetyGovernor governor(GovernorConfig{.hysteresis_segments = 3});
  EXPECT_TRUE(governor.within_hysteresis(40, 40));
  EXPECT_TRUE(governor.within_hysteresis(40, 43));
  EXPECT_TRUE(governor.within_hysteresis(40, 37));
  EXPECT_FALSE(governor.within_hysteresis(40, 44));
  EXPECT_FALSE(governor.within_hysteresis(40, 36));
}

TEST(SafetyGovernorTest, RollbackRequiresVolumeAndRate) {
  SafetyGovernor governor(GovernorConfig{.rollback_retrans_fraction = 0.1,
                                         .min_packets = 100});
  EXPECT_TRUE(governor.rollback_enabled());
  // Too few packets to judge, whatever the rate.
  EXPECT_FALSE(governor.should_rollback(50, 50, Time::zero()));
  // Enough volume, rate under threshold.
  EXPECT_FALSE(governor.should_rollback(9, 100, Time::zero()));
  // Enough volume, rate at/over threshold.
  EXPECT_TRUE(governor.should_rollback(10, 100, Time::zero()));
}

TEST(SafetyGovernorTest, CooldownSuppressesRollbackUntilItElapses) {
  SafetyGovernor governor(GovernorConfig{.rollback_retrans_fraction = 0.1,
                                         .min_packets = 100,
                                         .cooldown = Time::seconds(10)});
  ASSERT_TRUE(governor.should_rollback(50, 100, Time::seconds(1)));
  governor.arm_cooldown(Time::seconds(1));
  EXPECT_TRUE(governor.in_cooldown(Time::seconds(5)));
  EXPECT_FALSE(governor.should_rollback(50, 100, Time::seconds(5)));
  // Deadline passed: the kCooldown -> kNormal transition happens on the
  // in_cooldown() probe and rollback is live again.
  EXPECT_FALSE(governor.in_cooldown(Time::seconds(11) + Time::nanoseconds(1)));
  EXPECT_TRUE(governor.should_rollback(50, 100, Time::seconds(12)));
}

// ----------------------------------------------------- agent-level knobs

core::RiptideConfig agent_config() {
  core::RiptideConfig config;
  config.alpha = 0.0;
  config.c_max = 100;
  config.c_min = 10;
  return config;
}

// Establishes a data-carrying connection a -> b and grows a's cwnd.
void push_data(TwoHostNet& net, std::uint64_t bytes) {
  net.b.listen(9900, [](tcp::TcpConnection& conn) {
    tcp::TcpConnection::Callbacks cbs;
    conn.set_callbacks(std::move(cbs));
  });
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 9900, std::move(cbs));
  net.sim.run_until(net.sim.now() + Time::milliseconds(100));
  conn.send(bytes);
  net.sim.run_until(net.sim.now() + Time::seconds(5));
}

TEST(AgentGovernorTest, BudgetScalesTheInstalledWindow) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  core::RiptideAgent plain(net.sim, net.a, config);
  push_data(net, 500'000);
  plain.poll_once();
  const auto unscaled =
      net.a.routing_table().effective_initcwnd(net.b.address(), 10);
  ASSERT_GT(unscaled, 10u);

  // Same observations, but the host-wide budget only admits half.
  config.governor_budget_segments = unscaled / 2;
  core::RiptideAgent capped(net.sim, net.a, config);
  capped.poll_once();
  const auto scaled =
      net.a.routing_table().effective_initcwnd(net.b.address(), 10);
  EXPECT_LE(scaled, config.governor_budget_segments + 1);
  EXPECT_LT(scaled, unscaled);
  EXPECT_EQ(capped.stats().governor_budget_scaledowns, 1u);
  // The learned table keeps the unscaled value: the budget caps what is
  // installed, not what is known.
  const auto key = net::Prefix::host(net.b.address());
  ASSERT_NE(capped.learned(key), nullptr);
  EXPECT_DOUBLE_EQ(capped.learned(key)->final_window_segments,
                   static_cast<double>(unscaled));
}

TEST(AgentGovernorTest, BudgetShrinksRoutesInstalledInEarlierPolls) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.governor_budget_segments = 20;
  // Wide hysteresis: shrinking to budget is a safety action, not churn,
  // so the band must not be allowed to block it.
  config.governor_hysteresis_segments = 50;
  core::RiptideAgent agent(net.sim, net.a, config);

  // A previous generation learned an over-budget window; the warm restart
  // reinstalls it verbatim.
  core::ObservedTable snapshot;
  snapshot.store_final(net::Prefix::host(net.b.address()), 80.0, Time::zero());
  agent.restore_table(std::move(snapshot), /*reinstall_routes=*/true);
  ASSERT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            80u);

  // No fresh samples for the destination: the decisions loop never visits
  // it, so only the host-wide sweep can bring the install under budget.
  agent.poll_once();
  EXPECT_EQ(agent.stats().governor_budget_scaledowns, 1u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            20u);
  // The learned value stays unscaled: the budget caps what is installed,
  // not what is known.
  const auto* state = agent.learned(net::Prefix::host(net.b.address()));
  ASSERT_NE(state, nullptr);
  EXPECT_DOUBLE_EQ(state->final_window_segments, 80.0);
}

TEST(AgentGovernorTest, HysteresisSkipsChurnButNotTheFirstProgram) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.governor_hysteresis_segments = 50;  // wide: any repeat is churn
  core::RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);
  agent.poll_once();
  EXPECT_EQ(agent.stats().governor_hysteresis_skips, 0u);
  const auto routes_set = agent.stats().routes_set;
  ASSERT_GT(routes_set, 0u);
  agent.poll_once();
  EXPECT_EQ(agent.stats().governor_hysteresis_skips, 1u);
  EXPECT_EQ(agent.stats().routes_set, routes_set);  // no reprogram churn
}

// ---------------------------------------------------- route reconciliation

TEST(AgentReconcileTest, RepairsExternallyDeletedRoute) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.reconcile_routes = true;
  core::RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);
  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  const auto installed =
      net.a.routing_table().effective_initcwnd(net.b.address(), 10);
  ASSERT_GT(installed, 10u);

  // Outside actor: `ip route del`.
  ASSERT_TRUE(net.a.routing_table().remove(key));
  agent.poll_once();
  EXPECT_EQ(agent.stats().reconcile_repaired, 1u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            installed);
}

TEST(AgentReconcileTest, RepairsExternallyMangledRoute) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.reconcile_routes = true;
  core::RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);
  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  const auto* live = net.a.routing_table().find_route(key);
  ASSERT_NE(live, nullptr);
  const auto wanted = live->metrics;
  ASSERT_GT(wanted.initcwnd_segments, 1u);

  // Outside actor: `ip route replace` with a fat-fingered window.
  net.a.routing_table().add_or_replace(
      key, *live->device, host::RouteMetrics{1, wanted.initrwnd_segments});
  agent.poll_once();
  EXPECT_EQ(agent.stats().reconcile_conflicting, 1u);
  EXPECT_GE(agent.stats().reconcile_repaired, 1u);
  const auto* repaired = net.a.routing_table().find_route(key);
  ASSERT_NE(repaired, nullptr);
  EXPECT_EQ(repaired->metrics, wanted);
}

TEST(AgentReconcileTest, WithdrawsLearnedLookingOrphan) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.reconcile_routes = true;
  core::RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);
  agent.poll_once();
  const auto* owned =
      net.a.routing_table().find_route(net::Prefix::host(net.b.address()));
  ASSERT_NE(owned, nullptr);

  // A leftover from some dead process: learned-looking, owned by nobody.
  const auto orphan = net::Prefix::host(net::Ipv4Address(10, 0, 0, 99));
  net.a.routing_table().add_or_replace(orphan, *owned->device,
                                       host::RouteMetrics{55, 0});
  agent.poll_once();
  EXPECT_EQ(agent.stats().reconcile_orphaned, 1u);
  EXPECT_EQ(net.a.routing_table().find_route(orphan), nullptr);
}

TEST(AgentReconcileTest, KnobOffLeavesDriftAlone) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, agent_config());
  push_data(net, 500'000);
  agent.poll_once();
  const auto* owned =
      net.a.routing_table().find_route(net::Prefix::host(net.b.address()));
  ASSERT_NE(owned, nullptr);
  const auto orphan = net::Prefix::host(net::Ipv4Address(10, 0, 0, 99));
  net.a.routing_table().add_or_replace(orphan, *owned->device,
                                       host::RouteMetrics{55, 0});
  agent.poll_once();
  EXPECT_EQ(agent.stats().reconcile_orphaned, 0u);
  EXPECT_NE(net.a.routing_table().find_route(orphan), nullptr);
}

TEST(AgentGovernorTest, RejectsOutOfRangeRollbackFraction) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.governor_rollback_retrans_fraction = 1.5;
  EXPECT_THROW(core::RiptideAgent(net.sim, net.a, config),
               std::invalid_argument);
}

// ----------------------------------------------- emergency rollback (e2e)

TEST(GovernorRollbackTest, LossStormRollsBackCoolsDownAndRelearns) {
  cdn::ExperimentConfig config;
  auto pops = cdn::default_pop_specs();
  pops.resize(3);
  config.pop_specs = std::move(pops);
  config.topology.hosts_per_pop = 1;
  config.riptide_enabled = true;
  config.riptide.update_interval = Time::seconds(1);
  config.probe.interval = Time::seconds(2);
  config.duration = Time::seconds(90);
  config.seed = 11;
  config.riptide.governor_rollback_retrans_fraction = 0.05;
  config.riptide.governor_min_packets = 50;
  config.riptide.governor_cooldown = Time::seconds(10);
  faults::FaultHarness::install(
      config, faults::FaultPlan::parse("@30 loss 0-1 0.3 15"));

  cdn::Experiment experiment(config);
  experiment.run();

  core::AgentStats totals;
  std::size_t learned_at_end = 0;
  for (const auto& agent : experiment.agents()) {
    const auto& s = agent->stats();
    totals.governor_rollbacks += s.governor_rollbacks;
    totals.governor_routes_rolled_back += s.governor_routes_rolled_back;
    totals.governor_cooldown_polls += s.governor_cooldown_polls;
    learned_at_end += agent->table().size();
    EXPECT_TRUE(agent->running());
  }
  // The storm tripped at least one agent's rollback...
  EXPECT_GE(totals.governor_rollbacks, 1u);
  EXPECT_GT(totals.governor_routes_rolled_back, 0u);
  // ...which then sat out its cooldown...
  EXPECT_GT(totals.governor_cooldown_polls, 0u);
  // ...and re-learned from live traffic once the storm passed.
  EXPECT_GT(learned_at_end, 0u);
}

}  // namespace
}  // namespace riptide

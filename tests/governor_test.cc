// Safety governor and route reconciliation: the pure decision logic
// (budget scaling, hysteresis, rollback gating, cooldown state machine),
// the agent-level behaviors they drive, reconciliation of externally
// deleted/mangled/orphaned routes, and the end-to-end emergency-rollback
// scenario inside a full experiment.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>

#include "cdn/experiment.h"
#include "cdn/pops.h"
#include "core/agent.h"
#include "core/governor.h"
#include "core/observed_table.h"
#include "trace/event.h"
#include "trace/sink.h"
#include "faults/fault_plan.h"
#include "faults/harness.h"
#include "host/routing_table.h"
#include "net/ipv4.h"
#include "sim/time.h"
#include "test_util.h"

namespace riptide {
namespace {

using core::GovernorConfig;
using core::SafetyGovernor;
using sim::Time;
using test::TwoHostNet;

// ---------------------------------------------------- pure decision logic

TEST(SafetyGovernorTest, ZeroKnobsAreTheIdentityDecisions) {
  SafetyGovernor governor;  // every knob at its default
  EXPECT_FALSE(governor.rollback_enabled());
  EXPECT_DOUBLE_EQ(governor.budget_scale(1e9), 1.0);
  EXPECT_FALSE(governor.within_hysteresis(40, 40));  // equal is reprogrammed
  EXPECT_FALSE(governor.should_rollback(1000, 1000, Time::zero()));
}

TEST(SafetyGovernorTest, BudgetScaleCapsOnlyWhenOverCommitted) {
  SafetyGovernor governor(GovernorConfig{.budget_segments = 100});
  EXPECT_DOUBLE_EQ(governor.budget_scale(50.0), 1.0);
  EXPECT_DOUBLE_EQ(governor.budget_scale(100.0), 1.0);
  EXPECT_DOUBLE_EQ(governor.budget_scale(200.0), 0.5);
  EXPECT_DOUBLE_EQ(governor.budget_scale(400.0), 0.25);
}

TEST(SafetyGovernorTest, HysteresisBandsSmallDeltas) {
  SafetyGovernor governor(GovernorConfig{.hysteresis_segments = 3});
  EXPECT_TRUE(governor.within_hysteresis(40, 40));
  EXPECT_TRUE(governor.within_hysteresis(40, 43));
  EXPECT_TRUE(governor.within_hysteresis(40, 37));
  EXPECT_FALSE(governor.within_hysteresis(40, 44));
  EXPECT_FALSE(governor.within_hysteresis(40, 36));
}

TEST(SafetyGovernorTest, RollbackRequiresVolumeAndRate) {
  SafetyGovernor governor(GovernorConfig{.rollback_retrans_fraction = 0.1,
                                         .min_packets = 100});
  EXPECT_TRUE(governor.rollback_enabled());
  // Too few packets to judge, whatever the rate.
  EXPECT_FALSE(governor.should_rollback(50, 50, Time::zero()));
  // Enough volume, rate under threshold.
  EXPECT_FALSE(governor.should_rollback(9, 100, Time::zero()));
  // Enough volume, rate at/over threshold.
  EXPECT_TRUE(governor.should_rollback(10, 100, Time::zero()));
}

TEST(SafetyGovernorTest, CooldownSuppressesRollbackUntilItElapses) {
  SafetyGovernor governor(GovernorConfig{.rollback_retrans_fraction = 0.1,
                                         .min_packets = 100,
                                         .cooldown = Time::seconds(10)});
  ASSERT_TRUE(governor.should_rollback(50, 100, Time::seconds(1)));
  governor.arm_cooldown(Time::seconds(1));
  EXPECT_TRUE(governor.in_cooldown(Time::seconds(5)));
  EXPECT_FALSE(governor.should_rollback(50, 100, Time::seconds(5)));
  // Deadline passed: the kCooldown -> kNormal transition happens on the
  // in_cooldown() probe and rollback is live again.
  EXPECT_FALSE(governor.in_cooldown(Time::seconds(11) + Time::nanoseconds(1)));
  EXPECT_TRUE(governor.should_rollback(50, 100, Time::seconds(12)));
}

// ----------------------------------------------------- agent-level knobs

core::RiptideConfig agent_config() {
  core::RiptideConfig config;
  config.alpha = 0.0;
  config.c_max = 100;
  config.c_min = 10;
  return config;
}

// Establishes a data-carrying connection a -> b and grows a's cwnd.
void push_data(TwoHostNet& net, std::uint64_t bytes) {
  net.b.listen(9900, [](tcp::TcpConnection& conn) {
    tcp::TcpConnection::Callbacks cbs;
    conn.set_callbacks(std::move(cbs));
  });
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 9900, std::move(cbs));
  net.sim.run_until(net.sim.now() + Time::milliseconds(100));
  conn.send(bytes);
  net.sim.run_until(net.sim.now() + Time::seconds(5));
}

TEST(AgentGovernorTest, BudgetScalesTheInstalledWindow) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  core::RiptideAgent plain(net.sim, net.a, config);
  push_data(net, 500'000);
  plain.poll_once();
  const auto unscaled =
      net.a.routing_table().effective_initcwnd(net.b.address(), 10);
  ASSERT_GT(unscaled, 10u);

  // Same observations, but the host-wide budget only admits half.
  config.governor_budget_segments = unscaled / 2;
  core::RiptideAgent capped(net.sim, net.a, config);
  capped.poll_once();
  const auto scaled =
      net.a.routing_table().effective_initcwnd(net.b.address(), 10);
  EXPECT_LE(scaled, config.governor_budget_segments + 1);
  EXPECT_LT(scaled, unscaled);
  EXPECT_EQ(capped.stats().governor_budget_scaledowns, 1u);
  // The learned table keeps the unscaled value: the budget caps what is
  // installed, not what is known.
  const auto key = net::Prefix::host(net.b.address());
  ASSERT_NE(capped.learned(key), nullptr);
  EXPECT_DOUBLE_EQ(capped.learned(key)->final_window_segments,
                   static_cast<double>(unscaled));
}

TEST(AgentGovernorTest, BudgetShrinksRoutesInstalledInEarlierPolls) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.governor_budget_segments = 20;
  // Wide hysteresis: shrinking to budget is a safety action, not churn,
  // so the band must not be allowed to block it.
  config.governor_hysteresis_segments = 50;
  core::RiptideAgent agent(net.sim, net.a, config);

  // A previous generation learned an over-budget window; the warm restart
  // reinstalls it verbatim.
  core::ObservedTable snapshot;
  snapshot.store_final(net::Prefix::host(net.b.address()), 80.0, Time::zero());
  agent.restore_table(std::move(snapshot), /*reinstall_routes=*/true);
  ASSERT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            80u);

  // No fresh samples for the destination: the decisions loop never visits
  // it, so only the host-wide sweep can bring the install under budget.
  agent.poll_once();
  EXPECT_EQ(agent.stats().governor_budget_scaledowns, 1u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            20u);
  // The learned value stays unscaled: the budget caps what is installed,
  // not what is known.
  const auto* state = agent.learned(net::Prefix::host(net.b.address()));
  ASSERT_NE(state, nullptr);
  EXPECT_DOUBLE_EQ(state->final_window_segments, 80.0);
}

TEST(AgentGovernorTest, HysteresisSkipsChurnButNotTheFirstProgram) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.governor_hysteresis_segments = 50;  // wide: any repeat is churn
  core::RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);
  agent.poll_once();
  EXPECT_EQ(agent.stats().governor_hysteresis_skips, 0u);
  const auto routes_set = agent.stats().routes_set;
  ASSERT_GT(routes_set, 0u);
  agent.poll_once();
  EXPECT_EQ(agent.stats().governor_hysteresis_skips, 1u);
  EXPECT_EQ(agent.stats().routes_set, routes_set);  // no reprogram churn
}

// ---------------------------------------------------- route reconciliation

TEST(AgentReconcileTest, RepairsExternallyDeletedRoute) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.reconcile_routes = true;
  core::RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);
  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  const auto installed =
      net.a.routing_table().effective_initcwnd(net.b.address(), 10);
  ASSERT_GT(installed, 10u);

  // Outside actor: `ip route del`.
  ASSERT_TRUE(net.a.routing_table().remove(key));
  agent.poll_once();
  EXPECT_EQ(agent.stats().reconcile_repaired, 1u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            installed);
}

TEST(AgentReconcileTest, RepairsExternallyMangledRoute) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.reconcile_routes = true;
  core::RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);
  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  const auto* live = net.a.routing_table().find_route(key);
  ASSERT_NE(live, nullptr);
  const auto wanted = live->metrics;
  ASSERT_GT(wanted.initcwnd_segments, 1u);

  // Outside actor: `ip route replace` with a fat-fingered window.
  net.a.routing_table().add_or_replace(
      key, *live->device, host::RouteMetrics{1, wanted.initrwnd_segments});
  agent.poll_once();
  EXPECT_EQ(agent.stats().reconcile_conflicting, 1u);
  EXPECT_GE(agent.stats().reconcile_repaired, 1u);
  const auto* repaired = net.a.routing_table().find_route(key);
  ASSERT_NE(repaired, nullptr);
  EXPECT_EQ(repaired->metrics, wanted);
}

TEST(AgentReconcileTest, WithdrawsLearnedLookingOrphan) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.reconcile_routes = true;
  core::RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);
  agent.poll_once();
  const auto* owned =
      net.a.routing_table().find_route(net::Prefix::host(net.b.address()));
  ASSERT_NE(owned, nullptr);

  // A leftover from some dead process: learned-looking, owned by nobody.
  const auto orphan = net::Prefix::host(net::Ipv4Address(10, 0, 0, 99));
  net.a.routing_table().add_or_replace(orphan, *owned->device,
                                       host::RouteMetrics{55, 0});
  agent.poll_once();
  EXPECT_EQ(agent.stats().reconcile_orphaned, 1u);
  EXPECT_EQ(net.a.routing_table().find_route(orphan), nullptr);
}

TEST(AgentReconcileTest, KnobOffLeavesDriftAlone) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, agent_config());
  push_data(net, 500'000);
  agent.poll_once();
  const auto* owned =
      net.a.routing_table().find_route(net::Prefix::host(net.b.address()));
  ASSERT_NE(owned, nullptr);
  const auto orphan = net::Prefix::host(net::Ipv4Address(10, 0, 0, 99));
  net.a.routing_table().add_or_replace(orphan, *owned->device,
                                       host::RouteMetrics{55, 0});
  agent.poll_once();
  EXPECT_EQ(agent.stats().reconcile_orphaned, 0u);
  EXPECT_NE(net.a.routing_table().find_route(orphan), nullptr);
}

TEST(AgentGovernorTest, RejectsOutOfRangeRollbackFraction) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.governor_rollback_retrans_fraction = 1.5;
  EXPECT_THROW(core::RiptideAgent(net.sim, net.a, config),
               std::invalid_argument);
}

// ------------------------------------------- staged ladder (pure logic)

GovernorConfig staged_config() {
  GovernorConfig config;
  config.rollback_retrans_fraction = 0.1;
  config.min_packets = 100;
  config.cooldown = Time::seconds(10);
  config.staged_response = true;
  return config;
}

TEST(SafetyGovernorTest, ZeroPacketWindowIsNeverRollbackEvidence) {
  // Regression: with min_packets forced to 0, a zero-packet window used to
  // evaluate 0 >= fraction * 0 and fire a rollback out of pure silence.
  SafetyGovernor governor(GovernorConfig{.rollback_retrans_fraction = 0.1,
                                         .min_packets = 0});
  EXPECT_FALSE(governor.should_rollback(0, 0, Time::zero()));
  EXPECT_FALSE(governor.should_rollback(5, 0, Time::zero()));
  // With packets present the configured threshold applies as usual.
  EXPECT_TRUE(governor.should_rollback(1, 10, Time::zero()));
}

TEST(SafetyGovernorTest, CooldownExpiresExactlyAtTheDeadline) {
  // The deadline is now + cooldown; the boundary poll is already out of
  // cooldown (>= , not >) — an off-by-one here silently stretches every
  // cooldown by one poll interval.
  SafetyGovernor governor(GovernorConfig{.rollback_retrans_fraction = 0.1,
                                         .min_packets = 100,
                                         .cooldown = Time::seconds(10)});
  governor.arm_cooldown(Time::seconds(1));
  EXPECT_TRUE(
      governor.in_cooldown(Time::seconds(11) - Time::nanoseconds(1)));
  EXPECT_FALSE(governor.in_cooldown(Time::seconds(11)));
  EXPECT_EQ(governor.state(), core::GovernorState::kNormal);
}

TEST(SafetyGovernorTest, CooldownReentryWithStormBackoffExtendsDeadline) {
  auto config = staged_config();
  config.storm_backoff_factor = 2.0;
  config.max_cooldown = Time::seconds(60);
  config.storm_memory = Time::seconds(120);
  SafetyGovernor governor(config);

  // First incident: base cooldown, not a storm.
  EXPECT_FALSE(governor.arm_cooldown(Time::seconds(0)));
  EXPECT_EQ(governor.current_cooldown(), Time::seconds(10));
  EXPECT_FALSE(governor.in_cooldown(Time::seconds(10)));

  // Re-tripped within storm_memory of the previous cooldown's end: the
  // deadline doubles each time...
  EXPECT_TRUE(governor.arm_cooldown(Time::seconds(15)));
  EXPECT_EQ(governor.current_cooldown(), Time::seconds(20));
  EXPECT_TRUE(governor.in_cooldown(Time::seconds(30)));
  EXPECT_FALSE(governor.in_cooldown(Time::seconds(35)));

  EXPECT_TRUE(governor.arm_cooldown(Time::seconds(40)));
  EXPECT_EQ(governor.current_cooldown(), Time::seconds(40));

  // ...capped at max_cooldown...
  EXPECT_TRUE(governor.arm_cooldown(Time::seconds(90)));
  EXPECT_EQ(governor.current_cooldown(), Time::seconds(60));
  EXPECT_EQ(governor.storm_escalations(), 3u);

  // ...and a rollback after a quiet spell resets to the base cooldown.
  EXPECT_FALSE(governor.in_cooldown(Time::seconds(200)));
  EXPECT_FALSE(governor.arm_cooldown(Time::seconds(400)));
  EXPECT_EQ(governor.current_cooldown(), Time::seconds(10));
  EXPECT_EQ(governor.storm_escalations(), 3u);
}

TEST(SafetyGovernorTest, StormBackoffOffByDefaultKeepsEveryCooldownFlat) {
  auto config = staged_config();  // storm_backoff_factor = 1.0
  SafetyGovernor governor(config);
  governor.arm_cooldown(Time::seconds(0));
  EXPECT_FALSE(governor.in_cooldown(Time::seconds(10)));
  EXPECT_FALSE(governor.arm_cooldown(Time::seconds(11)));
  EXPECT_EQ(governor.current_cooldown(), Time::seconds(10));
  EXPECT_EQ(governor.storm_escalations(), 0u);
}

TEST(SafetyGovernorTest, StagedLadderEscalatesOneStagePerBadPoll) {
  SafetyGovernor governor(staged_config());
  EXPECT_TRUE(governor.staged());
  EXPECT_EQ(governor.assess(50, 100, Time::seconds(1)),
            core::StagedAction::kScaleDown);
  EXPECT_EQ(governor.state(), core::GovernorState::kScaleDown);
  EXPECT_EQ(governor.assess(50, 100, Time::seconds(2)),
            core::StagedAction::kSelectiveWithdraw);
  EXPECT_EQ(governor.state(), core::GovernorState::kSelectiveWithdraw);
  // Stage 3 returns the rollback action; the kCooldown transition belongs
  // to arm_cooldown, which the agent calls from its rollback sweep.
  EXPECT_EQ(governor.assess(50, 100, Time::seconds(3)),
            core::StagedAction::kRollback);
  EXPECT_EQ(governor.state(), core::GovernorState::kSelectiveWithdraw);
  governor.arm_cooldown(Time::seconds(3));
  EXPECT_EQ(governor.state(), core::GovernorState::kCooldown);
  // While cooling down the ladder is parked.
  EXPECT_EQ(governor.assess(50, 100, Time::seconds(5)),
            core::StagedAction::kNone);
}

TEST(SafetyGovernorTest, StagedLadderDropsStraightBackToNormalWhenHealthy) {
  SafetyGovernor governor(staged_config());
  governor.assess(50, 100, Time::seconds(1));
  governor.assess(50, 100, Time::seconds(2));
  ASSERT_EQ(governor.state(), core::GovernorState::kSelectiveWithdraw);
  // One healthy poll: no half-steps back down the ladder.
  EXPECT_EQ(governor.assess(0, 1000, Time::seconds(3)),
            core::StagedAction::kNone);
  EXPECT_EQ(governor.state(), core::GovernorState::kNormal);
}

TEST(SafetyGovernorTest, StagedLadderHoldsStateOnAnEmptyWindow) {
  SafetyGovernor governor(staged_config());
  governor.assess(50, 100, Time::seconds(1));
  ASSERT_EQ(governor.state(), core::GovernorState::kScaleDown);
  // No traffic is no evidence — neither escalation nor recovery.
  EXPECT_EQ(governor.assess(0, 0, Time::seconds(2)),
            core::StagedAction::kNone);
  EXPECT_EQ(governor.state(), core::GovernorState::kScaleDown);
  // Below min_packets is equally inconclusive.
  EXPECT_EQ(governor.assess(10, 50, Time::seconds(3)),
            core::StagedAction::kNone);
  EXPECT_EQ(governor.state(), core::GovernorState::kScaleDown);
}

// --------------------------------------------- staged ladder (agent-level)

// Drops every `period`-th data packet a -> b, forcing retransmissions on a.
void drop_periodically(TwoHostNet& net, int period) {
  auto counter = std::make_shared<int>(0);
  net.filter_ab.set_drop_predicate([counter,
                                    period](const net::Packet& packet) {
    const auto* seg = dynamic_cast<const tcp::Segment*>(packet.payload.get());
    if (seg == nullptr || seg->payload_bytes == 0) return false;
    return (++*counter % period) == 0;
  });
}

// Fresh connection a -> b on a shared listener; pushes bytes and runs.
struct TrafficRig {
  explicit TrafficRig(TwoHostNet& net) : net_(net) {
    net_.b.listen(9910, [](tcp::TcpConnection& conn) {
      tcp::TcpConnection::Callbacks cbs;
      conn.set_callbacks(std::move(cbs));
    });
  }
  void push(std::uint64_t bytes) {
    tcp::TcpConnection::Callbacks cbs;
    auto& conn = net_.a.connect(net_.b.address(), 9910, std::move(cbs));
    net_.sim.run_until(net_.sim.now() + Time::milliseconds(200));
    conn.send(bytes);
    net_.sim.run_until(net_.sim.now() + Time::seconds(5));
  }
  TwoHostNet& net_;
};

core::RiptideConfig staged_agent_config() {
  auto config = agent_config();
  config.governor_rollback_retrans_fraction = 0.02;
  config.governor_min_packets = 10;
  config.governor_cooldown = Time::seconds(10);
  config.governor_staged_response = true;
  config.governor_stage_scale_factor = 0.5;
  config.governor_stage_withdraw_fraction = 0.5;
  return config;
}

TEST(AgentStagedTest, LadderScalesThenWithdrawsThenRollsBack) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, staged_agent_config());
  TrafficRig rig(net);

  rig.push(500'000);
  agent.poll_once();
  const auto learned =
      net.a.routing_table().effective_initcwnd(net.b.address(), 10);
  ASSERT_GT(learned, 10u);
  ASSERT_EQ(agent.governor().state(), core::GovernorState::kNormal);

  // Stage 1: a lossy interval scales the installed window down in place.
  drop_periodically(net, 5);
  rig.push(300'000);
  agent.poll_once();
  EXPECT_EQ(agent.governor().state(), core::GovernorState::kScaleDown);
  EXPECT_EQ(agent.stats().governor_stage_scaledowns, 1u);
  EXPECT_EQ(agent.stats().governor_routes_stage_scaled, 1u);
  const auto scaled =
      net.a.routing_table().effective_initcwnd(net.b.address(), 10);
  EXPECT_LT(scaled, learned);
  EXPECT_GE(scaled, learned / 2);  // lround(learned * 0.5)

  // Stage 2: still lossy — the (sole, hence newest) route is withdrawn
  // and its learned entry erased so re-learning starts from scratch.
  rig.push(300'000);
  agent.poll_once();
  EXPECT_EQ(agent.governor().state(),
            core::GovernorState::kSelectiveWithdraw);
  EXPECT_EQ(agent.stats().governor_stage_withdrawals, 1u);
  EXPECT_EQ(agent.stats().governor_routes_stage_withdrawn, 1u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
  EXPECT_EQ(agent.learned(net::Prefix::host(net.b.address())), nullptr);

  // Stage 3: the full rollback + cooldown.
  rig.push(300'000);
  agent.poll_once();
  EXPECT_EQ(agent.governor().state(), core::GovernorState::kCooldown);
  EXPECT_EQ(agent.stats().governor_rollbacks, 1u);
}

TEST(AgentStagedTest, HealthyPollReprogramsTheFullLearnedWindow) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, staged_agent_config());
  TrafficRig rig(net);

  rig.push(500'000);
  agent.poll_once();
  drop_periodically(net, 5);
  rig.push(300'000);
  agent.poll_once();
  ASSERT_EQ(agent.governor().state(), core::GovernorState::kScaleDown);

  // Clean again: the ladder de-escalates in one poll and the full learned
  // window (kept unscaled in the table) is reprogrammed from fresh
  // observations.
  net.filter_ab.set_drop_predicate(nullptr);
  rig.push(500'000);
  agent.poll_once();
  EXPECT_EQ(agent.governor().state(), core::GovernorState::kNormal);
  EXPECT_EQ(agent.stats().governor_rollbacks, 0u);
  EXPECT_GT(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
}

TEST(AgentStagedTest, SelectiveWithdrawShedsTheNewestRouteFirst) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, staged_agent_config());
  TrafficRig rig(net);

  // A veteran (many updates) and a newcomer (one), both installed. The
  // newcomer's destination is covered by the default route, so programming
  // it resolves an egress even though no such host exists.
  const auto veteran = net::Prefix::host(net.b.address());
  const auto newcomer = net::Prefix::host(net::Ipv4Address(10, 0, 0, 99));
  core::ObservedTable snapshot;
  snapshot.put(veteran, core::DestinationState{60.0, Time::zero(), 40});
  snapshot.put(newcomer, core::DestinationState{30.0, Time::zero(), 1});
  agent.restore_table(std::move(snapshot), /*reinstall_routes=*/true);
  ASSERT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            60u);
  ASSERT_EQ(net.a.routing_table().effective_initcwnd(
                net::Ipv4Address(10, 0, 0, 99), 10),
            30u);

  // Escalate to stage 2: with withdraw_fraction 0.5 exactly one of the two
  // routes goes, and it must be the newcomer.
  drop_periodically(net, 5);
  rig.push(300'000);
  agent.poll_once();  // stage 1
  rig.push(300'000);
  agent.poll_once();  // stage 2
  ASSERT_EQ(agent.governor().state(),
            core::GovernorState::kSelectiveWithdraw);
  EXPECT_EQ(agent.stats().governor_routes_stage_withdrawn, 1u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(
                net::Ipv4Address(10, 0, 0, 99), 10),
            10u);
  EXPECT_EQ(agent.learned(newcomer), nullptr);
  // The veteran survives (scaled by stage 1, but installed and learned).
  EXPECT_GT(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
  EXPECT_NE(agent.learned(veteran), nullptr);
}

TEST(AgentStagedTest, ManualRollbackWithdrawsEverythingAndCoolsDown) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, staged_agent_config());
  TrafficRig rig(net);
  rig.push(500'000);
  agent.poll_once();
  ASSERT_GT(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);

  agent.manual_rollback();
  EXPECT_EQ(agent.stats().governor_rollbacks, 1u);
  EXPECT_EQ(agent.governor().state(), core::GovernorState::kCooldown);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
  EXPECT_EQ(agent.table().size(), 0u);
}

TEST(AgentStagedTest, RejectsNonsenseStagedKnobs) {
  TwoHostNet net(Time::milliseconds(20));
  auto bad_scale = staged_agent_config();
  bad_scale.governor_stage_scale_factor = 1.5;
  EXPECT_THROW(core::RiptideAgent(net.sim, net.a, bad_scale),
               std::invalid_argument);
  auto bad_backoff = staged_agent_config();
  bad_backoff.governor_storm_backoff_factor = 0.5;
  EXPECT_THROW(core::RiptideAgent(net.sim, net.a, bad_backoff),
               std::invalid_argument);
  auto bad_cap = staged_agent_config();
  bad_cap.governor_max_cooldown = Time::seconds(1);  // < cooldown
  EXPECT_THROW(core::RiptideAgent(net.sim, net.a, bad_cap),
               std::invalid_argument);
}

// ------------------------------------------- budget fairness (shed-newest)

TEST(AgentBudgetFairnessTest, ShedNewestKeepsVeteranWindowsWhole) {
  // Starvation regression: under proportional fairness a flash crowd of
  // fresh destinations dilutes every veteran window toward the floor;
  // shed-newest must instead shed the newcomers and leave the veteran's
  // installed window untouched.
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.governor_budget_segments = 60;
  config.governor_budget_fairness = core::BudgetFairness::kShedNewest;
  core::RiptideAgent agent(net.sim, net.a, config);

  const auto veteran = net::Prefix::host(net.b.address());
  const auto mid = net::Prefix::host(net::Ipv4Address(10, 0, 0, 50));
  const auto fresh1 = net::Prefix::host(net::Ipv4Address(10, 0, 0, 60));
  const auto fresh2 = net::Prefix::host(net::Ipv4Address(10, 0, 0, 70));
  core::ObservedTable snapshot;
  snapshot.put(veteran, core::DestinationState{40.0, Time::zero(), 50});
  snapshot.put(mid, core::DestinationState{30.0, Time::zero(), 5});
  snapshot.put(fresh1, core::DestinationState{30.0, Time::zero(), 1});
  snapshot.put(fresh2, core::DestinationState{30.0, Time::zero(), 1});
  agent.restore_table(std::move(snapshot), /*reinstall_routes=*/true);

  // Installed total 130 over a budget of 60: the veteran keeps all 40,
  // the mid-seniority route gets the 20 left over, both newcomers shed.
  agent.poll_once();
  EXPECT_EQ(agent.stats().governor_budget_sheds, 1u);
  EXPECT_EQ(agent.stats().governor_routes_budget_shed, 2u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            40u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(
                net::Ipv4Address(10, 0, 0, 50), 10),
            20u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(
                net::Ipv4Address(10, 0, 0, 60), 10),
            10u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(
                net::Ipv4Address(10, 0, 0, 70), 10),
            10u);
  // The learned table keeps every unscaled value: when the budget frees
  // up (or seniority grows), the shed routes can come back.
  EXPECT_NE(agent.learned(fresh1), nullptr);
  EXPECT_DOUBLE_EQ(agent.learned(fresh1)->final_window_segments, 30.0);

  // A second poll is stable: the same admission set reprograms nothing.
  const auto routes_set = agent.stats().routes_set;
  agent.poll_once();
  EXPECT_EQ(agent.stats().routes_set, routes_set);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            40u);
}

TEST(AgentBudgetFairnessTest, ProportionalFairnessStillDilutesEveryone) {
  // The documented contrast case for the default fairness mode.
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.governor_budget_segments = 60;
  core::RiptideAgent agent(net.sim, net.a, config);
  core::ObservedTable snapshot;
  snapshot.put(net::Prefix::host(net.b.address()),
               core::DestinationState{40.0, Time::zero(), 50});
  snapshot.put(net::Prefix::host(net::Ipv4Address(10, 0, 0, 60)),
               core::DestinationState{30.0, Time::zero(), 1});
  snapshot.put(net::Prefix::host(net::Ipv4Address(10, 0, 0, 70)),
               core::DestinationState{30.0, Time::zero(), 1});
  agent.restore_table(std::move(snapshot), /*reinstall_routes=*/true);

  agent.poll_once();
  // scale = 60 / 100: the veteran shrinks right along with the newcomers.
  EXPECT_EQ(agent.stats().governor_budget_scaledowns, 1u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            24u);
  EXPECT_EQ(agent.stats().governor_budget_sheds, 0u);
}

// ----------------------------------------------- governor-state tracing

TEST(GovernorTraceTest, StagedEdgesCarryCauseTags) {
  trace::TraceSink sink;
  trace::ScopedSink scoped(&sink);

  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, staged_agent_config());
  TrafficRig rig(net);
  rig.push(500'000);
  agent.poll_once();
  drop_periodically(net, 5);
  rig.push(300'000);
  agent.poll_once();  // -> kScaleDown
  net.filter_ab.set_drop_predicate(nullptr);
  rig.push(500'000);
  agent.poll_once();  // -> back to kNormal

  bool saw_escalation = false;
  bool saw_recovery = false;
  for (const auto& ev : sink.events()) {
    if (ev.kind != trace::EventKind::kGovernorState) continue;
    EXPECT_EQ(ev.governor.host, net.a.address().value());
    if (ev.governor.cause == trace::GovernorCause::kThreshold &&
        ev.governor.from ==
            static_cast<std::uint8_t>(core::GovernorState::kNormal) &&
        ev.governor.to ==
            static_cast<std::uint8_t>(core::GovernorState::kScaleDown)) {
      saw_escalation = true;
      EXPECT_GT(ev.governor.retrans_fraction, 0.02);
      EXPECT_EQ(ev.governor.routes, 1u);
    }
    if (ev.governor.cause == trace::GovernorCause::kRecovered &&
        ev.governor.to ==
            static_cast<std::uint8_t>(core::GovernorState::kNormal)) {
      saw_recovery = true;
    }
  }
  EXPECT_TRUE(saw_escalation);
  EXPECT_TRUE(saw_recovery);
}

TEST(GovernorTraceTest, ManualRollbackAndBudgetShedTagTheirCauses) {
  trace::TraceSink sink;
  trace::ScopedSink scoped(&sink);

  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.governor_budget_segments = 20;
  config.governor_budget_fairness = core::BudgetFairness::kShedNewest;
  core::RiptideAgent agent(net.sim, net.a, config);
  core::ObservedTable snapshot;
  snapshot.put(net::Prefix::host(net.b.address()),
               core::DestinationState{30.0, Time::zero(), 5});
  snapshot.put(net::Prefix::host(net::Ipv4Address(10, 0, 0, 60)),
               core::DestinationState{30.0, Time::zero(), 1});
  agent.restore_table(std::move(snapshot), /*reinstall_routes=*/true);
  agent.poll_once();      // budget shed (cause: budget, from == to)
  agent.manual_rollback();  // cause: manual, -> kCooldown

  bool saw_budget = false;
  bool saw_manual = false;
  for (const auto& ev : sink.events()) {
    if (ev.kind != trace::EventKind::kGovernorState) continue;
    if (ev.governor.cause == trace::GovernorCause::kBudget) {
      saw_budget = true;
      EXPECT_EQ(ev.governor.from, ev.governor.to);
      EXPECT_GE(ev.governor.routes, 1u);
    }
    if (ev.governor.cause == trace::GovernorCause::kManual) {
      saw_manual = true;
      EXPECT_EQ(ev.governor.to,
                static_cast<std::uint8_t>(core::GovernorState::kCooldown));
    }
  }
  EXPECT_TRUE(saw_budget);
  EXPECT_TRUE(saw_manual);
}

// ----------------------------------------------- emergency rollback (e2e)

TEST(GovernorRollbackTest, LossStormRollsBackCoolsDownAndRelearns) {
  cdn::ExperimentConfig config;
  auto pops = cdn::default_pop_specs();
  pops.resize(3);
  config.pop_specs = std::move(pops);
  config.topology.hosts_per_pop = 1;
  config.riptide_enabled = true;
  config.riptide.update_interval = Time::seconds(1);
  config.probe.interval = Time::seconds(2);
  config.duration = Time::seconds(90);
  config.seed = 11;
  config.riptide.governor_rollback_retrans_fraction = 0.05;
  config.riptide.governor_min_packets = 50;
  config.riptide.governor_cooldown = Time::seconds(10);
  faults::FaultHarness::install(
      config, faults::FaultPlan::parse("@30 loss 0-1 0.3 15"));

  cdn::Experiment experiment(config);
  experiment.run();

  core::AgentStats totals;
  std::size_t learned_at_end = 0;
  for (const auto& agent : experiment.agents()) {
    const auto& s = agent->stats();
    totals.governor_rollbacks += s.governor_rollbacks;
    totals.governor_routes_rolled_back += s.governor_routes_rolled_back;
    totals.governor_cooldown_polls += s.governor_cooldown_polls;
    learned_at_end += agent->table().size();
    EXPECT_TRUE(agent->running());
  }
  // The storm tripped at least one agent's rollback...
  EXPECT_GE(totals.governor_rollbacks, 1u);
  EXPECT_GT(totals.governor_routes_rolled_back, 0u);
  // ...which then sat out its cooldown...
  EXPECT_GT(totals.governor_cooldown_polls, 0u);
  // ...and re-learned from live traffic once the storm passed.
  EXPECT_GT(learned_at_end, 0u);
}

}  // namespace
}  // namespace riptide

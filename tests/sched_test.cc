// Scheduler-specific suite for the two-tier timer-wheel event queue
// (sim/simulator.{h,cc}): a differential property test that drives random
// schedule/cancel/run_until interleavings through the wheel and a
// reference model and demands identical (when, seq) dispatch order, plus
// directed tests for the seams the wheel added — overflow promotion,
// cascade boundaries, run-list requeue on stop()/throw, and the per-tier
// accounting and perf counters the benches rely on.
//
// Registered under the `sched` ctest label so CI can run the scheduler
// suite on its own (including under ASan/UBSan).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "stats/perf.h"

namespace riptide::sim {
namespace {

// ------------------------------------------------- differential property

// Reference model: the scheduler contract is "events fire in (when, seq)
// order, cancelled events do not fire". The model keeps every scheduled
// event with its global seq and replays them with a stable sort — no
// wheel, no heap — so any divergence indicts the wheel's cascade /
// promotion / run-list machinery.
struct ModelEvent {
  std::int64_t when_ns;
  std::uint64_t seq;
  int id;
  bool cancelled = false;
  bool fired = false;
};

class ReferenceModel {
 public:
  void schedule(std::int64_t when_ns, std::uint64_t seq, int id) {
    events_.push_back(ModelEvent{when_ns, seq, id});
  }

  void cancel(int id) {
    for (ModelEvent& e : events_) {
      if (e.id == id && !e.fired) e.cancelled = true;
    }
  }

  // Fires everything due by `deadline_ns` into `log`, in (when, seq) order.
  void run_until(std::int64_t deadline_ns, std::vector<int>& log) {
    std::vector<ModelEvent*> due;
    for (ModelEvent& e : events_) {
      if (!e.fired && !e.cancelled && e.when_ns <= deadline_ns) {
        due.push_back(&e);
      }
    }
    std::sort(due.begin(), due.end(), [](const ModelEvent* a,
                                         const ModelEvent* b) {
      if (a->when_ns != b->when_ns) return a->when_ns < b->when_ns;
      return a->seq < b->seq;
    });
    for (ModelEvent* e : due) {
      e->fired = true;
      log.push_back(e->id);
    }
  }

  std::size_t live() const {
    std::size_t n = 0;
    for (const ModelEvent& e : events_) {
      if (!e.fired && !e.cancelled) ++n;
    }
    return n;
  }

 private:
  std::vector<ModelEvent> events_;
};

// Delay magnitudes spanning every tier of the wheel: same-tick, level-0
// (ns..µs), level-1 (µs..ms), the coarse upper levels (ms..days), and
// past-the-horizon overflow (the wheel spans ~208 days; Time::hours(6000)
// = 250 days lands in the overflow heap).
std::int64_t random_delay_ns(Rng& rng) {
  switch (rng.uniform_int(0, 6)) {
    case 0: return 0;
    case 1: return rng.uniform_int(1, 4095);                       // level 0
    case 2: return rng.uniform_int(4096, 1 << 24);                 // level 1
    case 3: return rng.uniform_int(1 << 24, std::int64_t{1} << 34);
    case 4: return rng.uniform_int(std::int64_t{1} << 34,
                                   std::int64_t{1} << 44);
    case 5: return rng.uniform_int(std::int64_t{1} << 50,
                                   std::int64_t{1} << 53);
    default:
      return Time::hours(6000).ns() +
             rng.uniform_int(0, std::int64_t{1} << 30);  // overflow tier
  }
}

TEST(SchedulerPropertyTest, MatchesReferenceModelAcrossRandomInterleavings) {
  for (std::uint64_t seed : {11u, 23u, 47u, 91u}) {
    Rng rng(seed);
    Simulator sim;
    ReferenceModel model;
    std::vector<int> sim_log;
    std::vector<int> model_log;
    std::vector<std::pair<int, EventHandle>> live;
    std::uint64_t seq = 0;
    int next_id = 0;

    for (int op = 0; op < 3000; ++op) {
      const int kind = static_cast<int>(rng.uniform_int(0, 9));
      if (kind < 6) {
        const std::int64_t delay = random_delay_ns(rng);
        const int id = next_id++;
        EventHandle h = sim.schedule(
            Time::nanoseconds(delay),
            [id, &sim_log] { sim_log.push_back(id); });
        model.schedule(sim.now().ns() + delay, seq++, id);
        live.emplace_back(id, h);
      } else if (kind < 8) {
        if (live.empty()) continue;
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        live[pick].second.cancel();
        model.cancel(live[pick].first);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        // Step sizes again span the tiers, so run_until deadlines land
        // mid-bucket, on cascade boundaries, and across promotions.
        const std::int64_t step = random_delay_ns(rng) / 16 + 1;
        const Time deadline = sim.now() + Time::nanoseconds(step);
        sim.run_until(deadline);
        model.run_until(deadline.ns(), model_log);
        ASSERT_EQ(sim_log, model_log) << "seed " << seed << " op " << op;
        ASSERT_EQ(sim.live_events(), model.live())
            << "seed " << seed << " op " << op;
      }
    }
    // Drain everything, overflow tier included.
    sim.run();
    model.run_until(std::numeric_limits<std::int64_t>::max(), model_log);
    EXPECT_EQ(sim_log, model_log) << "seed " << seed;
    EXPECT_EQ(sim.live_events(), 0u);
    EXPECT_EQ(sim.pending_events(), 0u);
  }
}

// ------------------------------------------------------- directed seams

TEST(SchedulerTest, SameTickScheduleFromCallbackRunsAfterBucketFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(Time::microseconds(1), [&] {
    order.push_back(1);
    // Same timestamp as the bucket being dispatched: must run in this
    // same run_* call, after every event already queued at this tick.
    sim.schedule(Time::zero(), [&] { order.push_back(3); });
  });
  sim.schedule(Time::microseconds(1), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, FarFutureEventsParkInOverflowAndPromote) {
  Simulator sim;
  const perf::Counters before = perf::local();
  std::vector<int> order;
  // Beyond the ~208-day wheel horizon: must park in the overflow heap.
  sim.schedule(Time::hours(6000), [&] { order.push_back(2); });
  sim.schedule(Time::hours(6000) + Time::nanoseconds(1),
               [&] { order.push_back(3); });
  sim.schedule(Time::milliseconds(1), [&] { order.push_back(1); });
  EXPECT_EQ(sim.overflow_events(), 2u);
  EXPECT_EQ(sim.live_events(), 3u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.overflow_events(), 0u);
  const perf::Counters delta = perf::local().delta_since(before);
  EXPECT_EQ(delta.overflow_promotions, 2u);
}

TEST(SchedulerTest, WheelCancellationIsEagerOverflowIsLazy) {
  Simulator sim;
  std::vector<EventHandle> wheel;
  for (int i = 0; i < 100; ++i) {
    wheel.push_back(sim.schedule(Time::milliseconds(i + 1), [] {}));
  }
  EventHandle far = sim.schedule(Time::hours(6000), [] {});
  EXPECT_EQ(sim.pending_events(), 101u);
  for (auto& h : wheel) h.cancel();
  // Wheel residents unlink immediately; no zombies left behind.
  EXPECT_EQ(sim.live_events(), 1u);
  EXPECT_EQ(sim.pending_events(), 1u);
  far.cancel();
  // The overflow entry dies in place and is reclaimed lazily.
  EXPECT_EQ(sim.live_events(), 0u);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SchedulerTest, StopMidBucketRequeuesRemainderInOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(Time::microseconds(1), [&order, &sim, i] {
      order.push_back(i);
      if (i == 1) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  // The abandoned run-list tail was relinked: a fresh run fires the rest
  // in the original FIFO order.
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, ThrowMidBucketConsumesThrowerAndRequeuesRest) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.schedule(Time::microseconds(1), [&order, i] {
      order.push_back(i);
      if (i == 1) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(sim.run(), std::runtime_error);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  sim.run();
  // The throwing event is consumed, not retried; survivors keep order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedulerTest, PeriodicTimerCrossesCascadeBoundariesExactly) {
  Simulator sim;
  // 5 ms lands in level 1 / level 2 territory, so every firing re-enters
  // the wheel above level 0 and must cascade back down on time.
  std::vector<std::int64_t> fire_ns;
  sim.schedule_periodic(Time::milliseconds(5), Time::milliseconds(5),
                        [&] { fire_ns.push_back(sim.now().ns()); });
  sim.run_until(Time::milliseconds(100));
  ASSERT_EQ(fire_ns.size(), 20u);
  for (std::size_t i = 0; i < fire_ns.size(); ++i) {
    EXPECT_EQ(fire_ns[i], Time::milliseconds(5).ns() *
                              static_cast<std::int64_t>(i + 1));
  }
}

TEST(SchedulerTest, CascadeAndBucketCountersAttributeWork) {
  Simulator sim;
  const perf::Counters before = perf::local();
  std::uint64_t fired = 0;
  // 5 ms from t=0 sits above level 0, so dispatching it requires at least
  // one cascade; each dispatched timestamp costs exactly one bucket.
  sim.schedule(Time::milliseconds(5), [&] { ++fired; });
  sim.schedule(Time::milliseconds(5), [&] { ++fired; });
  sim.schedule(Time::microseconds(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 3u);
  const perf::Counters delta = perf::local().delta_since(before);
  EXPECT_EQ(delta.events_dispatched, 3u);
  EXPECT_GE(delta.events_cascaded, 2u);       // both 5 ms events moved down
  EXPECT_EQ(delta.timer_buckets_dispatched, 2u);  // two distinct timestamps
  EXPECT_EQ(delta.overflow_promotions, 0u);
}

TEST(SchedulerTest, RearmChurnLeavesNoGarbage) {
  Simulator sim;
  EventHandle rto;
  std::uint64_t fired = 0;
  for (int i = 0; i < 50'000; ++i) {
    rto.cancel();
    rto = sim.schedule(Time::milliseconds(200), [&] { ++fired; });
    // Eager unlink: exactly one live timer, no cancelled residue.
    ASSERT_EQ(sim.pending_events(), 1u);
  }
  sim.run();
  EXPECT_EQ(fired, 1u);
}

}  // namespace
}  // namespace riptide::sim

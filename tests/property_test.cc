// Property-based and fuzz-style tests over the core invariants:
//  - TCP delivers exactly the bytes sent, in order, under arbitrary loss;
//  - the receive tracker matches a naive reference implementation on
//    random segment interleavings;
//  - congestion controllers keep their windows within sane bounds under
//    random event sequences;
//  - Riptide never programs a window outside [c_min, c_max];
//  - Cdf quantiles match a brute-force reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cdn/hostile.h"
#include "core/agent.h"
#include "faults/fault_plan.h"
#include "policy/policy.h"
#include "sim/random.h"
#include "stats/cdf.h"
#include "tcp/congestion_control.h"
#include "tcp/cubic.h"
#include "tcp/receive_tracker.h"
#include "tcp/reno.h"
#include "test_util.h"

namespace riptide {
namespace {

using riptide::test::TwoHostNet;
using sim::Time;

// ------------------------------------------------- lossy delivery sweeps

struct LossCase {
  double loss;
  std::uint64_t bytes;
  std::uint64_t seed;
};

class LossyTransferTest : public ::testing::TestWithParam<LossCase> {};

TEST_P(LossyTransferTest, DeliversExactlyOnceInOrder) {
  const auto& param = GetParam();
  TwoHostNet net(Time::milliseconds(20));
  // Route both directions through random loss.
  sim::Rng loss_rng(param.seed);
  net.filter_ba.set_drop_predicate([&, p = param.loss](const net::Packet&) {
    return loss_rng.bernoulli(p);
  });
  net.filter_ab.set_drop_predicate([&, p = param.loss](const net::Packet&) {
    return loss_rng.bernoulli(p);
  });

  std::uint64_t received = 0;
  net.b.listen(80, [&](tcp::TcpConnection& conn) {
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_data = [&](std::uint64_t bytes) { received += bytes; };
    cbs.on_peer_closed = [&conn] { conn.close(); };
    conn.set_callbacks(std::move(cbs));
  });

  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 80, std::move(cbs));
  net.sim.run_until(Time::seconds(20));  // survive SYN losses
  ASSERT_TRUE(conn.established());
  conn.send(param.bytes);
  conn.close();
  net.sim.run_until(net.sim.now() + Time::minutes(5));

  // Exactly-once delivery: the receiver's cumulative in-order count equals
  // the bytes sent, never more (duplicates are filtered by the tracker).
  EXPECT_EQ(received, param.bytes);
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, LossyTransferTest,
    ::testing::Values(LossCase{0.0, 300'000, 1}, LossCase{0.005, 300'000, 2},
                      LossCase{0.02, 200'000, 3}, LossCase{0.05, 100'000, 4},
                      LossCase{0.02, 200'000, 5}, LossCase{0.05, 100'000, 6},
                      LossCase{0.10, 50'000, 7}, LossCase{0.02, 1'000'000, 8}),
    [](const ::testing::TestParamInfo<LossCase>& info) {
      return "loss" + std::to_string(static_cast<int>(info.param.loss * 1000)) +
             "_bytes" + std::to_string(info.param.bytes) + "_seed" +
             std::to_string(info.param.seed);
    });

// --------------------------------------------- receive tracker vs reference

class TrackerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerFuzzTest, MatchesNaiveReferenceOnRandomInterleavings) {
  sim::Rng rng(GetParam());
  tcp::ReceiveTracker tracker(0);

  // Reference: the set of received byte positions.
  std::set<std::uint64_t> reference;
  std::uint64_t delivered_total = 0;

  constexpr std::uint64_t kSpace = 4000;
  for (int step = 0; step < 400; ++step) {
    const auto start =
        static_cast<std::uint64_t>(rng.uniform_int(0, kSpace - 1));
    const auto len = static_cast<std::uint64_t>(rng.uniform_int(1, 120));
    const auto end = std::min(start + len, kSpace);

    delivered_total += tracker.on_segment(start, end);
    for (std::uint64_t b = start; b < end; ++b) reference.insert(b);

    // rcv_nxt is the length of the contiguous prefix of received bytes.
    std::uint64_t expected_nxt = 0;
    for (std::uint64_t b : reference) {
      if (b != expected_nxt) break;
      ++expected_nxt;
    }
    ASSERT_EQ(tracker.rcv_nxt(), expected_nxt) << "step " << step;
    ASSERT_EQ(delivered_total, expected_nxt) << "step " << step;

    // Out-of-order byte count matches the reference set beyond the prefix.
    ASSERT_EQ(tracker.out_of_order_bytes(), reference.size() - expected_nxt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ------------------------------------------- congestion controller fuzzing

class CcFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

void fuzz_controller(tcp::CongestionControl& cc, sim::Rng& rng,
                     std::uint32_t mss) {
  Time now = Time::zero();
  for (int step = 0; step < 2000; ++step) {
    now += Time::milliseconds(rng.uniform_int(1, 50));
    const int action = static_cast<int>(rng.uniform_int(0, 9));
    const auto in_flight =
        static_cast<std::uint64_t>(rng.uniform_int(0, 200)) * mss;
    if (action < 6) {
      tcp::AckEvent ev{now,
                       static_cast<std::uint64_t>(rng.uniform_int(1, 3)) * mss,
                       in_flight, Time::milliseconds(rng.uniform_int(5, 300))};
      cc.on_ack(ev);
    } else if (action < 7) {
      cc.on_enter_recovery(now, in_flight);
      cc.on_exit_recovery(now + Time::milliseconds(100));
    } else if (action < 8) {
      cc.on_timeout(now, in_flight);
    } else {
      cc.on_restart_after_idle();
    }
    // Invariants: loss window floor, ssthresh floor, no overflow blowups.
    ASSERT_GE(cc.cwnd_bytes(), mss) << "step " << step;
    ASSERT_GE(cc.ssthresh_bytes(), 2u * mss) << "step " << step;
    ASSERT_LT(cc.cwnd_bytes(), std::uint64_t{1} << 40) << "step " << step;
  }
}

TEST_P(CcFuzzTest, RenoInvariantsHoldUnderRandomEvents) {
  sim::Rng rng(GetParam());
  tcp::NewReno cc(1460, 10 * 1460);
  fuzz_controller(cc, rng, 1460);
}

TEST_P(CcFuzzTest, CubicInvariantsHoldUnderRandomEvents) {
  sim::Rng rng(GetParam());
  tcp::Cubic cc(1460, 10 * 1460);
  fuzz_controller(cc, rng, 1460);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcFuzzTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

// -------------------------------------------------- Riptide clamp invariant

class AgentClampTest : public ::testing::TestWithParam<std::uint64_t> {};

class BoundsCheckingProgrammer : public core::RouteProgrammer {
 public:
  BoundsCheckingProgrammer(std::uint32_t c_min, std::uint32_t c_max)
      : c_min_(c_min), c_max_(c_max) {}
  void set_initial_windows(const net::Prefix&, std::uint32_t initcwnd,
                           std::uint32_t initrwnd,
                           tcp::RouteCc = tcp::RouteCc::kUnset) override {
    EXPECT_GE(initcwnd, c_min_);
    EXPECT_LE(initcwnd, c_max_);
    EXPECT_GE(initrwnd, c_max_);  // §III-C: initrwnd covers c_max
    ++programmed;
  }
  void clear(const net::Prefix&) override {}
  int programmed = 0;

 private:
  std::uint32_t c_min_;
  std::uint32_t c_max_;
};

TEST_P(AgentClampTest, ProgrammedWindowsAlwaysWithinBounds) {
  TwoHostNet net(Time::milliseconds(10));
  net.b.listen(9900, [](tcp::TcpConnection& conn) {
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_peer_closed = [&conn] { conn.close(); };
    conn.set_callbacks(std::move(cbs));
  });

  core::RiptideConfig config;
  config.c_min = 15;
  config.c_max = 60;
  config.alpha = 0.3;
  auto programmer = std::make_unique<BoundsCheckingProgrammer>(15, 60);
  auto* raw = programmer.get();
  core::RiptideAgent agent(net.sim, net.a, config, std::move(programmer));
  agent.start();

  // Random traffic: transfers of random size at random times, sometimes
  // closing connections.
  sim::Rng rng(GetParam());
  std::vector<tcp::TcpConnection*> conns;
  for (int burst = 0; burst < 20; ++burst) {
    if (conns.empty() || rng.bernoulli(0.4)) {
      tcp::TcpConnection::Callbacks cbs;
      conns.push_back(&net.a.connect(net.b.address(), 9900, std::move(cbs)));
      net.sim.run_until(net.sim.now() + Time::milliseconds(100));
    }
    auto* conn = conns[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(conns.size()) - 1))];
    if (conn->established() && !conn->close_requested()) {
      conn->send(static_cast<std::uint64_t>(rng.uniform_int(1'000, 400'000)));
    }
    if (rng.bernoulli(0.2)) {
      conn->abort();
      conns.erase(std::find(conns.begin(), conns.end(), conn));
    }
    net.sim.run_until(net.sim.now() +
                      Time::milliseconds(rng.uniform_int(200, 2000)));
  }
  EXPECT_GT(raw->programmed, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgentClampTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ----------------------------------------------------- Cdf vs brute force

class CdfReferenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfReferenceTest, QuantilesMatchSortedReference) {
  sim::Rng rng(GetParam());
  stats::Cdf cdf;
  std::vector<double> reference;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(-1000, 1000);
    cdf.add(v);
    reference.push_back(v);
  }
  std::sort(reference.begin(), reference.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.731, 0.9, 0.99, 1.0}) {
    const double pos = q * (n - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min<std::size_t>(lo + 1, n - 1);
    const double frac = pos - static_cast<double>(lo);
    const double expected =
        reference[lo] * (1.0 - frac) + reference[hi] * frac;
    EXPECT_NEAR(cdf.quantile(q), expected, 1e-9);
  }
  // fraction_at_or_below is the inverse view.
  for (double v : {-900.0, -1.0, 0.0, 500.0, 999.0}) {
    const auto count = static_cast<double>(
        std::upper_bound(reference.begin(), reference.end(), v) -
        reference.begin());
    EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(v), count / n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfReferenceTest,
                         ::testing::Values(7u, 77u, 777u));

// ------------------------------------ scenario grammar round-trip property
//
// The chaos engine (src/chaos) re-serializes shrunk scenarios through these
// codecs, so parse(to_string(x)) == x must hold for every representable
// value, not just the handful of specs written by hand in other suites.
// Times are drawn as multiples of 0.5 s: exactly representable through the
// seconds<->Time conversion either side of the codec.

Time half_seconds(sim::Rng& rng, std::int64_t min_halves,
                  std::int64_t max_halves) {
  return Time::milliseconds(rng.uniform_int(min_halves, max_halves) * 500);
}

double pick_fraction(sim::Rng& rng) {
  constexpr double kChoices[] = {0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.9, 1.0};
  return kChoices[rng.uniform_int(0, 7)];
}

faults::FaultPlan random_fault_plan(sim::Rng& rng) {
  faults::FaultPlan plan;
  const int legs = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < legs; ++i) {
    const Time at = half_seconds(rng, 1, 120);
    const Time duration = half_seconds(rng, 1, 60);
    const auto pop_a = static_cast<std::size_t>(rng.uniform_int(0, 6));
    const auto pop_b = pop_a + 1;
    const int host = static_cast<int>(rng.uniform_int(-1, 7));
    switch (rng.uniform_int(0, 11)) {
      case 0:
        plan.link_down(at, pop_a, pop_b);
        break;
      case 1:
        plan.link_up(at, pop_a, pop_b);
        break;
      case 2:
        plan.link_flap(at, pop_a, pop_b, duration,
                       static_cast<int>(rng.uniform_int(1, 8)));
        break;
      case 3:
        plan.loss_burst(at, pop_a, pop_b, pick_fraction(rng), duration);
        break;
      case 4:
        plan.rate_factor(at, pop_a, pop_b, 0.25 * rng.uniform_int(1, 16),
                         duration);
        break;
      case 5:
        plan.extra_delay(at, pop_a, pop_b, 0.5 * rng.uniform_int(1, 400),
                         duration);
        break;
      case 6:
        plan.actuator_failures(at, pick_fraction(rng), duration);
        break;
      case 7:
        plan.poll_failures(at, pick_fraction(rng), duration);
        break;
      case 8:
        plan.poll_partial(at, pick_fraction(rng), duration);
        break;
      case 9:
        plan.agent_crash(at, host, duration, rng.bernoulli(0.5),
                         rng.bernoulli(0.5));
        break;
      case 10:
        plan.snapshot_corrupt(
            at, host, static_cast<std::size_t>(rng.uniform_int(0, 4096)));
        break;
      default:
        plan.route_drift(at, host, pick_fraction(rng), pick_fraction(rng));
        break;
    }
  }
  return plan;
}

cdn::HostileConfig random_hostile(sim::Rng& rng) {
  cdn::HostileConfig config;
  config.kind = static_cast<cdn::HostileKind>(rng.uniform_int(0, 4));
  config.queue_packets = static_cast<std::size_t>(rng.uniform_int(1, 4096));
  config.victim_pop = static_cast<std::size_t>(rng.uniform_int(0, 7));
  config.fanin_connections = static_cast<int>(rng.uniform_int(1, 64));
  config.burst_bytes =
      static_cast<std::uint64_t>(rng.uniform_int(1, 1'000'000));
  config.incast_start = half_seconds(rng, 1, 120);
  config.incast_interval = half_seconds(rng, 1, 60);
  config.crowd_at = half_seconds(rng, 1, 120);
  config.crowd_connections = static_cast<int>(rng.uniform_int(1, 100));
  config.crowd_bytes =
      static_cast<std::uint64_t>(rng.uniform_int(1, 2'000'000));
  config.crowd_repeats = static_cast<int>(rng.uniform_int(1, 8));
  config.crowd_period = half_seconds(rng, 1, 120);
  return config;
}

policy::PolicySpec random_policy(sim::Rng& rng) {
  policy::PolicySpec spec;
  spec.kind = static_cast<policy::PolicyKind>(rng.uniform_int(0, 3));
  // Only fields the canonical string can express may stray from their
  // defaults: "default" carries no granularity, static_iw prints only for
  // static-iw, governed only for adaptive.
  if (spec.kind != policy::PolicyKind::kDefault) {
    constexpr int kPrefixes[] = {16, 20, 24, 28, 32};
    spec.prefix_length = kPrefixes[rng.uniform_int(0, 4)];
  }
  if (spec.kind == policy::PolicyKind::kStaticIw) {
    spec.static_iw = static_cast<std::uint32_t>(rng.uniform_int(1, 1000));
  }
  if (spec.kind == policy::PolicyKind::kAdaptive) {
    spec.governed = rng.bernoulli(0.5);
  }
  return spec;
}

class GrammarRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrammarRoundTripTest, FaultPlanSpecStringIsCanonical) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const faults::FaultPlan plan = random_fault_plan(rng);
    const std::string spec = faults::to_spec_string(plan);
    const faults::FaultPlan reparsed = faults::FaultPlan::parse(spec);
    ASSERT_EQ(plan, reparsed) << spec;
    ASSERT_EQ(spec, faults::to_spec_string(reparsed));
  }
}

TEST_P(GrammarRoundTripTest, HostileSpecStringIsCanonical) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const cdn::HostileConfig config = random_hostile(rng);
    const std::string spec = cdn::to_spec_string(config);
    const cdn::HostileConfig reparsed = cdn::parse_hostile_spec(spec);
    ASSERT_EQ(config, reparsed) << spec;
    ASSERT_EQ(spec, cdn::to_spec_string(reparsed));
  }
}

TEST_P(GrammarRoundTripTest, PolicySpecStringIsCanonical) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const policy::PolicySpec spec = random_policy(rng);
    const std::string text = policy::to_string(spec);
    const policy::PolicySpec reparsed = policy::parse_policy(text);
    ASSERT_EQ(spec, reparsed) << text;
    ASSERT_EQ(text, policy::to_string(reparsed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrammarRoundTripTest,
                         ::testing::Values(17u, 34u, 51u, 68u));

// Every grammar rejection must point at the offending token by byte
// offset — campaign logs and --validate-only lean on this.
TEST(GrammarErrorTest, AllThreeGrammarsReportByteOffsets) {
  const auto offset_of = [](const auto& parse) -> std::string {
    try {
      parse();
    } catch (const std::invalid_argument& err) {
      return err.what();
    }
    return "";
  };
  std::string what =
      offset_of([] { (void)faults::FaultPlan::parse("@5 down 0-x"); });
  EXPECT_NE(what.find("at byte 10"), std::string::npos) << what;
  what = offset_of([] { (void)cdn::parse_hostile_spec("incast:victim=x"); });
  EXPECT_NE(what.find("at byte 14"), std::string::npos) << what;
  what = offset_of([] { (void)policy::parse_policy("adaptive@99"); });
  EXPECT_NE(what.find("at byte 9"), std::string::npos) << what;
}

}  // namespace
}  // namespace riptide

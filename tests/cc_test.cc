// Congestion-control zoo tests (ctest label "cc"): the HyStart exit
// detectors, the token-bucket pacer's release-time arithmetic and its
// determinism across ParallelRunner thread counts, BBR-lite's delivery-rate
// model (including reordered ACK streams), and the per-route CC control
// plane (routing-table metric -> connect-time config -> policy grammar).

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "cdn/experiment.h"
#include "cdn/pops.h"
#include "persist/crc32.h"
#include "policy/policy.h"
#include "runner/parallel_runner.h"
#include "runner/sweep.h"
#include "sim/simulator.h"
#include "tcp/bbr_lite.h"
#include "tcp/config.h"
#include "tcp/congestion_control.h"
#include "tcp/cubic.h"
#include "tcp/hystart.h"
#include "tcp/pacing.h"
#include "tcp/reno.h"

namespace riptide {
namespace {

using sim::Time;
using namespace riptide::tcp;

constexpr std::uint32_t kMss = 1448;

AckEvent rtt_ack(Time now, Time rtt, std::uint64_t bytes = kMss) {
  return AckEvent{now, bytes, 50 * kMss, rtt};
}

// ------------------------------------------------------------ TokenBucket

TEST(PacerTest, UnblockedUntilFirstSend) {
  TokenBucketPacer pacer;
  EXPECT_FALSE(pacer.blocked(Time::zero()));
  EXPECT_FALSE(pacer.blocked(Time::seconds(100)));
}

TEST(PacerTest, ReleaseAdvancesByBytesOverRate) {
  TokenBucketPacer pacer;
  const Time now = Time::seconds(1);
  // 14480 bytes at 1 MB/s -> 14.48 ms serialization time.
  pacer.on_send(now, 10 * kMss, 1e6, /*burst_bytes=*/0);
  EXPECT_TRUE(pacer.blocked(now));
  EXPECT_EQ(pacer.release_at(), now + Time::from_seconds(10 * kMss / 1e6));
  EXPECT_FALSE(pacer.blocked(pacer.release_at()));
}

TEST(PacerTest, ConsecutiveSendsAccumulateFromRelease) {
  // Second send before the first release must extend the schedule from the
  // release point, not from `now` — the EDT property that keeps long-run
  // throughput equal to the rate.
  TokenBucketPacer pacer;
  const Time now = Time::seconds(1);
  pacer.on_send(now, kMss, 1e6, 0);
  pacer.on_send(now, kMss, 1e6, 0);
  EXPECT_EQ(pacer.release_at(), now + Time::from_seconds(2 * kMss / 1e6));
}

TEST(PacerTest, BurstAllowanceUnblocksEarly) {
  TokenBucketPacer pacer;
  const Time now = Time::seconds(1);
  pacer.on_send(now, 10 * kMss, 1e6, /*burst_bytes=*/10 * kMss);
  // A full burst's worth of slack: the next send may go immediately.
  EXPECT_FALSE(pacer.blocked(now));
  pacer.reset();
  EXPECT_FALSE(pacer.blocked(Time::zero()));
}

TEST(PacerTest, RateFloorAvoidsDivisionBlowup) {
  TokenBucketPacer pacer;
  pacer.on_send(Time::seconds(1), kMss, 0.0, 0);  // rate clamps to 1 B/s
  EXPECT_TRUE(pacer.blocked(Time::seconds(2)));
}

// --------------------------------------------------------------- HyStart

TEST(HystartUnitTest, DelayIncreaseFiresAcrossRounds) {
  Hystart hs;
  const Time rtt0 = Time::milliseconds(100);
  Time now = Time::zero();
  // Round 1 at base RTT.
  for (int i = 0; i < 4; ++i) {
    now = now + Time::milliseconds(10);
    EXPECT_FALSE(hs.on_ack(rtt_ack(now, rtt0), rtt0));
  }
  // Next round: min RTT jumped by far more than eta (100/8 clamped to
  // [4, 16] -> 12.5 ms).
  now = now + rtt0 + Time::milliseconds(1);
  EXPECT_TRUE(
      hs.on_ack(rtt_ack(now, Time::milliseconds(160)), rtt0));
}

TEST(HystartUnitTest, SteadyRttNeverFires) {
  Hystart hs;
  const Time rtt0 = Time::milliseconds(100);
  Time now = Time::zero();
  for (int i = 0; i < 100; ++i) {
    now = now + Time::milliseconds(30);
    EXPECT_FALSE(hs.on_ack(rtt_ack(now, rtt0), rtt0)) << i;
  }
}

TEST(HystartUnitTest, EtaDivisorTunesSensitivity) {
  // With eta_divisor = 2 the threshold is half the previous round's min
  // (widen max_eta so the clamp does not mask it): a +20 ms inflation
  // that fires the default detector must NOT fire this one.
  HystartTuning tuning;
  tuning.eta_divisor = 2;
  tuning.max_eta = Time::milliseconds(64);
  Hystart hs(tuning);
  Time now = Time::zero();
  for (int i = 0; i < 10; ++i) {
    now = now + Time::milliseconds(12);
    EXPECT_FALSE(hs.on_ack(rtt_ack(now, Time::milliseconds(100)),
                           Time::milliseconds(100)));
  }
  for (int i = 0; i < 30; ++i) {
    now = now + Time::milliseconds(12);
    EXPECT_FALSE(hs.on_ack(rtt_ack(now, Time::milliseconds(120)),
                           Time::milliseconds(120)))
        << i;
  }
  // +70 ms over the 120 ms plateau exceeds eta = 60 ms.
  bool fired = false;
  for (int i = 0; i < 30 && !fired; ++i) {
    now = now + Time::milliseconds(12);
    fired = hs.on_ack(rtt_ack(now, Time::milliseconds(190)),
                      Time::milliseconds(190));
  }
  EXPECT_TRUE(fired);
}

TEST(HystartUnitTest, AckTrainFiresWhenSpanReachesHalfMinRtt) {
  HystartTuning tuning;
  tuning.ack_train = true;
  Hystart hs(tuning);
  const Time rtt0 = Time::milliseconds(100);
  Time now = Time::zero();
  bool fired = false;
  // ACKs 1 ms apart (under the 2 ms spacing cap): the train span reaches
  // rtt0/2 = 50 ms after ~50 ACKs, well within one 100 ms round.
  for (int i = 0; i < 80 && !fired; ++i) {
    now = now + Time::milliseconds(1);
    fired = hs.on_ack(rtt_ack(now, rtt0), rtt0);
  }
  EXPECT_TRUE(fired);
}

TEST(HystartUnitTest, AckTrainOffByDefault) {
  Hystart hs;  // default tuning: delay-increase only
  EXPECT_FALSE(hs.tuning().ack_train);
  const Time rtt0 = Time::milliseconds(100);
  Time now = Time::zero();
  for (int i = 0; i < 80; ++i) {
    now = now + Time::milliseconds(1);
    EXPECT_FALSE(hs.on_ack(rtt_ack(now, rtt0), rtt0));
  }
}

TEST(HystartUnitTest, RenoComposesHystart) {
  NewReno cc(kMss, 10 * kMss, /*hystart=*/true);
  EXPECT_TRUE(cc.hystart_enabled());
  EXPECT_TRUE(cc.in_slow_start());
  Time now = Time::zero();
  for (int i = 0; i < 10; ++i) {
    now = now + Time::milliseconds(12);
    cc.on_ack(rtt_ack(now, Time::milliseconds(100)));
  }
  CcSignal signal = CcSignal::kNone;
  for (int i = 0; i < 30 && signal == CcSignal::kNone; ++i) {
    now = now + Time::milliseconds(12);
    cc.on_ack(rtt_ack(now, Time::milliseconds(160)));
    signal = cc.take_signal();
  }
  EXPECT_FALSE(cc.in_slow_start());
  EXPECT_EQ(signal, CcSignal::kHystartExit);
  EXPECT_EQ(cc.take_signal(), CcSignal::kNone);  // drained
}

TEST(HystartUnitTest, RenoHystartOffByDefault) {
  NewReno cc(kMss, 10 * kMss);
  EXPECT_FALSE(cc.hystart_enabled());
}

TEST(HystartUnitTest, CubicSignalsExitOnce) {
  Cubic cc(kMss, 10 * kMss, /*hystart=*/true);
  Time now = Time::zero();
  for (int i = 0; i < 10; ++i) {
    now = now + Time::milliseconds(12);
    cc.on_ack(rtt_ack(now, Time::milliseconds(100)));
    EXPECT_EQ(cc.take_signal(), CcSignal::kNone);
  }
  CcSignal signal = CcSignal::kNone;
  for (int i = 0; i < 30 && signal == CcSignal::kNone; ++i) {
    now = now + Time::milliseconds(12);
    cc.on_ack(rtt_ack(now, Time::milliseconds(160)));
    signal = cc.take_signal();
  }
  EXPECT_EQ(signal, CcSignal::kHystartExit);
  // Exactly once: after the exit the controller is out of slow start and
  // later ACKs carry no pending signal.
  now = now + Time::milliseconds(12);
  cc.on_ack(rtt_ack(now, Time::milliseconds(160)));
  EXPECT_EQ(cc.take_signal(), CcSignal::kNone);
}

// -------------------------------------------------------------- BBR-lite

// Drives a synthetic ACK clock: `rate` bytes/sec delivered as kMss-sized
// cumulative ACKs with a fixed RTT, for `duration` of simulated time.
void drive_acks(BbrLite& cc, Time& now, double rate, Time rtt,
                Time duration) {
  const Time gap = Time::from_seconds(kMss / rate);
  const Time until = now + duration;
  while (now < until) {
    now = now + gap;
    cc.on_ack(rtt_ack(now, rtt));
  }
}

TEST(BbrLiteTest, EstimatesDeliveryRate) {
  BbrLite cc(kMss, 10 * kMss);
  Time now = Time::zero();
  const double rate = 2e6;  // 2 MB/s
  drive_acks(cc, now, rate, Time::milliseconds(20), Time::seconds(2));
  EXPECT_GT(cc.rounds_elapsed(), 10u);
  EXPECT_NEAR(cc.bottleneck_bw_bytes_per_sec(), rate, rate * 0.15);
  ASSERT_TRUE(cc.min_rtt().has_value());
  EXPECT_EQ(*cc.min_rtt(), Time::milliseconds(20));
}

TEST(BbrLiteTest, StartupExitsOnPlateauIntoProbeBw) {
  BbrLite cc(kMss, 10 * kMss);
  Time now = Time::zero();
  EXPECT_TRUE(cc.in_slow_start());  // STARTUP maps to slow start
  drive_acks(cc, now, 1e6, Time::milliseconds(20), Time::seconds(2));
  // A constant-rate path plateaus the filter within a few rounds.
  EXPECT_FALSE(cc.in_slow_start());
  // cwnd converged near cwnd_gain * BDP (1 MB/s * 20 ms = 20 KB).
  const double bdp = 1e6 * 0.020;
  EXPECT_GT(cc.cwnd_bytes(), static_cast<std::uint64_t>(bdp));
  EXPECT_LT(cc.cwnd_bytes(), static_cast<std::uint64_t>(4 * bdp));
  EXPECT_GT(cc.pacing_rate_bytes_per_sec(), 0.5e6);
}

TEST(BbrLiteTest, ReorderingPreservesDeliveryAccounting) {
  // Reordering at the ACK level: dupACK stretches contribute nothing,
  // then one cumulative ACK restores the full byte count. The per-round
  // delivered/elapsed sample must match the in-order stream's.
  BbrLite in_order(kMss, 10 * kMss);
  BbrLite reordered(kMss, 10 * kMss);
  const Time rtt = Time::milliseconds(20);
  const double rate = 1e6;
  Time now_a = Time::zero();
  drive_acks(in_order, now_a, rate, rtt, Time::seconds(2));

  Time now_b = Time::zero();
  const Time gap = Time::from_seconds(kMss / rate);
  int burst = 0;
  const Time until = now_b + Time::seconds(2);
  while (now_b < until) {
    now_b = now_b + gap;
    // Every 8th tick, hold back 7 ACKs' worth and release them as one
    // cumulative ACK (the post-reorder catch-up).
    if (++burst % 8 == 0) {
      reordered.on_ack(rtt_ack(now_b, rtt, 7 * kMss));
    } else if (burst % 8 < 7) {
      // held back: no new bytes acked (dupACK), no RTT sample
      reordered.on_ack(AckEvent{now_b, 0, 50 * kMss, std::nullopt});
    } else {
      reordered.on_ack(rtt_ack(now_b, rtt));
    }
  }
  const double bw_in_order = in_order.bottleneck_bw_bytes_per_sec();
  const double bw_reordered = reordered.bottleneck_bw_bytes_per_sec();
  EXPECT_NEAR(bw_reordered, bw_in_order, bw_in_order * 0.2);
}

TEST(BbrLiteTest, LossEventsLeaveTheModelAlone) {
  BbrLite cc(kMss, 10 * kMss);
  Time now = Time::zero();
  drive_acks(cc, now, 1e6, Time::milliseconds(20), Time::seconds(2));
  const std::uint64_t cwnd = cc.cwnd_bytes();
  cc.on_enter_recovery(now, cwnd);
  EXPECT_EQ(cc.cwnd_bytes(), cwnd);
  cc.on_exit_recovery(now);
  EXPECT_EQ(cc.cwnd_bytes(), cwnd);
  // Only an RTO collapses, and only to the floor — the bw filter survives.
  const double bw = cc.bottleneck_bw_bytes_per_sec();
  cc.on_timeout(now, cwnd);
  EXPECT_EQ(cc.cwnd_bytes(), std::uint64_t{4} * kMss);
  EXPECT_EQ(cc.bottleneck_bw_bytes_per_sec(), bw);
}

TEST(BbrLiteTest, ProbeRttDipsAndSignals) {
  BbrTuning tuning;
  tuning.min_rtt_window = Time::seconds(1);  // age the estimate fast
  tuning.probe_rtt_duration = Time::milliseconds(200);
  BbrLite cc(kMss, 10 * kMss, tuning);
  Time now = Time::zero();
  drive_acks(cc, now, 1e6, Time::milliseconds(20), Time::milliseconds(500));
  EXPECT_FALSE(cc.in_probe_rtt());
  // Keep delivering with a *higher* RTT so the min never refreshes; once
  // the window lapses the controller must probe.
  bool probed = false;
  CcSignal signal = CcSignal::kNone;
  const Time gap = Time::from_seconds(kMss / 1e6);
  for (int i = 0; i < 4000 && !probed; ++i) {
    now = now + gap;
    cc.on_ack(rtt_ack(now, Time::milliseconds(25)));
    const CcSignal s = cc.take_signal();
    if (s != CcSignal::kNone) signal = s;
    probed = cc.in_probe_rtt();
  }
  ASSERT_TRUE(probed);
  EXPECT_EQ(signal, CcSignal::kBbrProbeRtt);
  EXPECT_EQ(cc.cwnd_bytes(), std::uint64_t{4} * kMss);
  // The episode ends after probe_rtt_duration and the window restores.
  drive_acks(cc, now, 1e6, Time::milliseconds(20), Time::milliseconds(400));
  EXPECT_FALSE(cc.in_probe_rtt());
  EXPECT_GT(cc.cwnd_bytes(), std::uint64_t{4} * kMss);
}

TEST(BbrLiteTest, FactorySelectsBbr) {
  TcpConfig config;
  config.congestion_control = CcAlgorithm::kBbrLite;
  const auto cc = make_congestion_control(config, 10 * config.mss);
  EXPECT_STREQ(cc->name(), "bbr-lite");
}

// ------------------------------------------------- per-route CC plumbing

TEST(RouteCcTest, TokensRoundTrip) {
  for (const RouteCc cc : {RouteCc::kReno, RouteCc::kCubic,
                           RouteCc::kCubicFast, RouteCc::kBbrLite}) {
    RouteCc parsed = RouteCc::kUnset;
    ASSERT_TRUE(parse_route_cc(to_string(cc), parsed)) << to_string(cc);
    EXPECT_EQ(parsed, cc);
  }
  RouteCc parsed = RouteCc::kUnset;
  EXPECT_FALSE(parse_route_cc("vegas", parsed));
  EXPECT_FALSE(parse_route_cc("", parsed));
}

TEST(RouteCcTest, ApplySetsAlgorithmAndCompanions) {
  TcpConfig config;  // defaults: cubic, no hystart, no pacing
  apply_route_cc(RouteCc::kUnset, config);
  EXPECT_EQ(config.congestion_control, CcAlgorithm::kCubic);
  EXPECT_FALSE(config.hystart);
  EXPECT_FALSE(config.pacing);

  apply_route_cc(RouteCc::kReno, config);
  EXPECT_EQ(config.congestion_control, CcAlgorithm::kNewReno);

  apply_route_cc(RouteCc::kCubicFast, config);
  EXPECT_EQ(config.congestion_control, CcAlgorithm::kCubic);
  EXPECT_TRUE(config.hystart);
  EXPECT_TRUE(config.pacing);

  TcpConfig bbr;
  const std::uint32_t icw = bbr.initial_cwnd_segments;
  apply_route_cc(RouteCc::kBbrLite, bbr);
  EXPECT_EQ(bbr.congestion_control, CcAlgorithm::kBbrLite);
  EXPECT_TRUE(bbr.pacing);
  // Windows are the agent's lever, never the regime's.
  EXPECT_EQ(bbr.initial_cwnd_segments, icw);
}

TEST(RouteCcTest, PolicyGrammarRoundTripsCcSuffix) {
  for (const std::string name :
       {"default,cc=bbr", "static-iw32@24,cc=cubic-fast",
        "adaptive-governed@24,cc=bbr", "oracle@20,cc=reno", "adaptive"}) {
    const policy::PolicySpec spec = policy::parse_policy(name);
    EXPECT_EQ(policy::to_string(spec), name) << name;
  }
  EXPECT_EQ(policy::parse_policy("adaptive,cc=bbr").cc, RouteCc::kBbrLite);
  EXPECT_THROW(policy::parse_policy("adaptive,cc=vegas"),
               std::invalid_argument);
  EXPECT_THROW(policy::parse_policy("adaptive,iw=3"), std::invalid_argument);
  EXPECT_THROW(policy::parse_policy("adaptive,cc="), std::invalid_argument);
}

TEST(RouteCcTest, PolicyAppliesCcToConfig) {
  cdn::ExperimentConfig config;
  policy::apply_policy(config, policy::parse_policy("default,cc=bbr"));
  EXPECT_EQ(config.topology.host_tcp.congestion_control,
            CcAlgorithm::kBbrLite);
  EXPECT_TRUE(config.topology.host_tcp.pacing);

  cdn::ExperimentConfig adaptive;
  policy::apply_policy(adaptive,
                       policy::parse_policy("adaptive,cc=cubic-fast"));
  EXPECT_EQ(adaptive.riptide.route_cc, RouteCc::kCubicFast);
  // The host-wide config is untouched: only programmed routes switch.
  EXPECT_EQ(adaptive.topology.host_tcp.congestion_control,
            CcAlgorithm::kCubic);
}

// Route metric -> connect-time consumption, through a real world: program
// a bbr route on one host, open a connection past it, and observe the
// controller switch (and stay stock for unprogrammed destinations).
TEST(RouteCcTest, ProgrammedRouteSwitchesController) {
  cdn::ExperimentConfig config;
  config.pop_specs = {cdn::default_pop_specs()[0], cdn::default_pop_specs()[1],
                      cdn::default_pop_specs()[2]};
  config.topology.hosts_per_pop = 1;
  config.riptide_enabled = false;
  config.duration = Time::seconds(5);
  cdn::Experiment exp(config);

  host::Host& src = exp.topology().host(0, 0);
  host::Host& dst = exp.topology().host(1, 0);
  core::HostRouteProgrammer programmer(src);
  programmer.set_initial_windows(net::Prefix::host(dst.address()), 32, 32,
                                 RouteCc::kBbrLite);
  EXPECT_EQ(src.routing_table().effective_cc(dst.address()),
            RouteCc::kBbrLite);
  // connect() consults the route once, like Linux does at SYN time; the
  // connection's config shows what it resolved.
  const tcp::TcpConnection& conn = src.connect(dst.address(), 80, {});
  EXPECT_EQ(conn.config().congestion_control, CcAlgorithm::kBbrLite);
  EXPECT_TRUE(conn.config().pacing);
  EXPECT_EQ(conn.config().initial_cwnd_segments, 32u);

  // A destination with no programmed route keeps the host default.
  host::Host& other = exp.topology().host(2, 0);
  const tcp::TcpConnection& stock = src.connect(other.address(), 80, {});
  EXPECT_EQ(stock.config().congestion_control, CcAlgorithm::kCubic);
  EXPECT_FALSE(stock.config().pacing);
}

// ------------------------------------- pacing determinism across threads

// Golden-style world with the pacer ON: the fingerprint must not depend
// on ParallelRunner's thread count (pacer state is strictly per-run) or
// on repetition (no state leaks across runs).
cdn::ExperimentConfig paced_config(std::uint64_t seed = 42) {
  cdn::ExperimentConfig config;
  config.pop_specs = {cdn::default_pop_specs()[0], cdn::default_pop_specs()[1],
                      cdn::default_pop_specs()[2]};
  config.topology.hosts_per_pop = 1;
  config.topology.wan_loss_probability = 2e-4;
  config.topology.seed = seed;
  config.topology.host_tcp.pacing = true;
  config.topology.host_tcp.hystart = true;
  config.riptide_enabled = true;
  config.riptide.update_interval = Time::seconds(1);
  config.riptide.c_max = 100;
  config.probe.interval = Time::seconds(5);
  config.duration = Time::seconds(30);
  config.seed = seed;
  return config;
}

std::string serialize_flows(const cdn::Experiment& exp) {
  std::string out;
  char line[160];
  for (const auto& f : exp.metrics().flows()) {
    std::snprintf(line, sizeof line, "F,%d,%d,%" PRIu64 ",%" PRId64 "\n",
                  f.src_pop, f.dst_pop, f.object_bytes, f.duration.ns());
    out += line;
  }
  return out;
}

TEST(PacedDeterminismTest, FingerprintInvariantAcrossThreads) {
  const auto run_with_threads = [](unsigned threads) {
    auto results =
        runner::ParallelRunner(threads).run(runner::SweepSpec(paced_config())
                                                .seeds({42, 43})
                                                .materialize());
    std::uint32_t crc = 0;
    for (const auto& r : results) {
      crc = persist::crc32(serialize_flows(*r.experiment) +
                           std::to_string(crc));
    }
    return crc;
  };
  const std::uint32_t one = run_with_threads(1);
  EXPECT_EQ(one, run_with_threads(2));
  EXPECT_EQ(one, run_with_threads(1));  // run-twice
}

TEST(PacedDeterminismTest, BbrWorldIsRepeatable) {
  cdn::ExperimentConfig config = paced_config();
  apply_route_cc(RouteCc::kBbrLite, config.topology.host_tcp);
  const auto fingerprint = [&config] {
    cdn::Experiment exp(config);
    exp.run();
    return persist::crc32(serialize_flows(exp));
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

}  // namespace
}  // namespace riptide

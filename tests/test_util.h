#pragma once

#include <functional>
#include <memory>

#include "host/host.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "tcp/config.h"
#include "tcp/segment.h"

namespace riptide::test {

// Pass-through packet sink that can drop or inspect packets, for
// deterministic loss injection in TCP tests.
class PacketFilter : public net::PacketSink {
 public:
  // Return true to DROP the packet.
  using DropPredicate = std::function<bool(const net::Packet&)>;

  explicit PacketFilter(net::PacketSink& next) : next_(next) {}

  void set_drop_predicate(DropPredicate pred) { drop_ = std::move(pred); }

  // Drops the next `n` packets carrying payload bytes.
  void drop_next_data_packets(int n) {
    remaining_data_drops_ = n;
  }

  void receive(const net::Packet& packet) override {
    ++seen_;
    if (remaining_data_drops_ > 0) {
      const auto* seg =
          dynamic_cast<const tcp::Segment*>(packet.payload.get());
      if (seg != nullptr && seg->payload_bytes > 0) {
        --remaining_data_drops_;
        ++dropped_;
        return;
      }
    }
    if (drop_ && drop_(packet)) {
      ++dropped_;
      return;
    }
    next_.receive(packet);
  }

  int seen() const { return seen_; }
  int dropped() const { return dropped_; }

 private:
  net::PacketSink& next_;
  DropPredicate drop_;
  int remaining_data_drops_ = 0;
  int seen_ = 0;
  int dropped_ = 0;
};

// Two hosts joined by a symmetric pair of links, with loss-injection
// filters in both directions:
//   a --[filter_ab]--[link_ab]--> b     b --[filter_ba]--[link_ba]--> a
struct TwoHostNet {
  explicit TwoHostNet(sim::Time one_way_delay = sim::Time::milliseconds(50),
                      double rate_bps = 1e9,
                      tcp::TcpConfig config = tcp::TcpConfig{},
                      std::size_t queue_packets = 1024)
      : rng(42),
        a(sim, "a", net::Ipv4Address(10, 0, 0, 1), config),
        b(sim, "b", net::Ipv4Address(10, 0, 0, 2), config),
        link_ab(sim,
                net::Link::Config{rate_bps, one_way_delay, queue_packets, 0.0,
                                  "ab"},
                b, &rng),
        link_ba(sim,
                net::Link::Config{rate_bps, one_way_delay, queue_packets, 0.0,
                                  "ba"},
                a, &rng),
        filter_ab(link_ab),
        filter_ba(link_ba) {
    a.attach_uplink(filter_ab);
    b.attach_uplink(filter_ba);
  }

  sim::Simulator sim;
  sim::Rng rng;
  host::Host a;
  host::Host b;
  net::Link link_ab;
  net::Link link_ba;
  PacketFilter filter_ab;
  PacketFilter filter_ba;
};

}  // namespace riptide::test

#pragma once

// Event-queue throughput driver behind bench_micro's --queue-json mode.
// Exercises the simulator hot patterns the experiment workload is made of
// and reports one machine-readable JSON row per workload (JSONL), so
// successive PRs can track the event-loop trajectory and
// tools/bench_diff.py can diff two captures workload by workload:
//
//   schedule_fire   - one-shot events scheduled and drained in batches
//                     (the probe/packet delivery path)
//   schedule_cancel - events scheduled then cancelled before firing
//                     (delayed-ACK and pacing timers)
//   rto_rearm       - a retransmission timer cancelled and rearmed on
//                     every simulated ACK (the lazy-cancellation pattern
//                     that used to bloat the heap)
//   rearm_churn     - a fleet of concurrent RTO timers, each ACK
//                     cancelling and re-arming one of them: the
//                     schedule/cancel/reschedule churn a busy host's
//                     connection table generates
//   far_future      - events scheduled past the wheel horizon, half
//                     cancelled, the rest drained: exercises the overflow
//                     tier and its promotion path end to end
//
// Only the public Simulator API is used (plus duck-typed probes for the
// timer-wheel extras below), so the same driver links against any
// simulator implementation — numbers are apples-to-apples across PRs.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "sim/simulator.h"
#include "stats/perf.h"

namespace riptide::bench {

namespace detail {
inline double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// Duck-typed probes so this driver also compiles against the pre-wheel
// binary-heap simulator when capturing baseline numbers: scheduler_name()
// and overflow_events() only exist on the two-tier scheduler.
template <typename S>
constexpr auto scheduler_label(int) -> decltype(S::scheduler_name()) {
  return S::scheduler_name();
}
template <typename S>
constexpr const char* scheduler_label(...) {
  return "binary-heap";
}

template <typename S>
auto overflow_events(const S& s, int) -> decltype(s.overflow_events()) {
  return s.overflow_events();
}
template <typename S>
std::size_t overflow_events(const S&, ...) {
  return 0;
}
}  // namespace detail

// One bench workload's measurement: rate, peak queue footprint, and the
// perf-counter delta accumulated while it ran (events_cascaded /
// overflow_promotions prove which scheduler tier did the work).
struct QueueWorkloadResult {
  const char* workload = "";
  double ops_per_sec = 0.0;
  std::size_t peak_pending = 0;
  perf::Counters counters;
};

struct QueueThroughput {
  std::vector<QueueWorkloadResult> workloads;
};

inline QueueThroughput measure_queue_throughput(std::size_t total_ops =
                                                    2'000'000) {
  QueueThroughput out;
  const std::size_t batch = 10'000;

  {
    // schedule_fire: realistic queue depth of `batch`, fully drained.
    sim::Simulator sim;
    std::uint64_t sink = 0;
    const perf::Counters before = perf::local();
    const double start = detail::now_seconds();
    for (std::size_t done = 0; done < total_ops; done += batch) {
      for (std::size_t i = 0; i < batch; ++i) {
        sim.schedule(sim::Time::microseconds(static_cast<std::int64_t>(i)),
                     [&sink] { ++sink; });
      }
      sim.run();
    }
    const double elapsed = detail::now_seconds() - start;
    if (sink != total_ops) std::fprintf(stderr, "queue bench: bad sink\n");
    out.workloads.push_back(
        {"schedule_fire", static_cast<double>(total_ops) / elapsed, batch,
         perf::local().delta_since(before)});
  }

  {
    // schedule_cancel: every event cancelled before it can fire.
    sim::Simulator sim;
    std::vector<sim::EventHandle> handles(batch);
    const perf::Counters before = perf::local();
    const double start = detail::now_seconds();
    for (std::size_t done = 0; done < total_ops; done += batch) {
      for (std::size_t i = 0; i < batch; ++i) {
        handles[i] = sim.schedule(
            sim::Time::microseconds(static_cast<std::int64_t>(i + 1)), [] {});
      }
      for (auto& h : handles) h.cancel();
      sim.run();
    }
    const double elapsed = detail::now_seconds() - start;
    out.workloads.push_back(
        {"schedule_cancel", static_cast<double>(total_ops) / elapsed, batch,
         perf::local().delta_since(before)});
  }

  {
    // rto_rearm: one long-lived timer rearmed per simulated ACK, clock
    // creeping forward, with a stream of live short-delay events (the ACKs
    // themselves) keeping the queue head live — TCP's RTO pattern. A
    // scheduler with lazy cancellation accumulates the dead timers deep in
    // the queue where head-purging cannot reach them; eager unlink keeps
    // peak_pending at the live population.
    sim::Simulator sim;
    sim::EventHandle rto;
    std::uint64_t fired = 0;
    std::size_t peak = 0;
    const perf::Counters before = perf::local();
    const double start = detail::now_seconds();
    for (std::size_t i = 0; i < total_ops; ++i) {
      rto.cancel();
      rto = sim.schedule(sim::Time::milliseconds(200), [&fired] { ++fired; });
      sim.schedule(sim::Time::microseconds(100), [&fired] { ++fired; });
      if (i % 64 == 0) {
        if (sim.pending_events() > peak) peak = sim.pending_events();
        sim.run_until(sim.now() + sim::Time::microseconds(10));
      }
    }
    if (sim.pending_events() > peak) peak = sim.pending_events();
    sim.run();
    const double elapsed = detail::now_seconds() - start;
    out.workloads.push_back({"rto_rearm",
                             static_cast<double>(total_ops) / elapsed, peak,
                             perf::local().delta_since(before)});
  }

  {
    // rearm_churn: kTimers concurrent RTO timers (one per connection on a
    // busy host), every simulated ACK cancelling and re-arming one of them
    // round-robin while the clock creeps. Unlike rto_rearm's single hot
    // timer, the dead entries here are spread across the whole 200 ms
    // lookahead — the worst case for lazy cancellation, the best case for
    // O(1) intrusive unlink.
    constexpr std::size_t kTimers = 1024;
    sim::Simulator sim;
    std::vector<sim::EventHandle> timers(kTimers);
    std::uint64_t fired = 0;
    std::size_t peak = 0;
    const perf::Counters before = perf::local();
    const double start = detail::now_seconds();
    for (std::size_t i = 0; i < total_ops; ++i) {
      sim::EventHandle& t = timers[i % kTimers];
      t.cancel();
      t = sim.schedule(sim::Time::milliseconds(200), [&fired] { ++fired; });
      if (i % 256 == 0) {
        if (sim.pending_events() > peak) peak = sim.pending_events();
        sim.run_until(sim.now() + sim::Time::microseconds(50));
      }
    }
    if (sim.pending_events() > peak) peak = sim.pending_events();
    sim.run();
    const double elapsed = detail::now_seconds() - start;
    out.workloads.push_back({"rearm_churn",
                             static_cast<double>(total_ops) / elapsed, peak,
                             perf::local().delta_since(before)});
  }

  {
    // far_future: events scheduled ~a year out — past the ~208-day wheel
    // horizon, so they land in the overflow tier — then half cancelled
    // (lazy reclamation there) and the rest drained through promotion back
    // into the wheel. One "op" is one schedule, one cancel, or one fire.
    const std::size_t n = total_ops / 2;
    sim::Simulator sim;
    std::vector<sim::EventHandle> handles(n);
    std::uint64_t fired = 0;
    std::size_t peak_overflow = 0;
    const perf::Counters before = perf::local();
    const double start = detail::now_seconds();
    for (std::size_t i = 0; i < n; ++i) {
      handles[i] = sim.schedule(
          sim::Time::seconds(30'000'000) +
              sim::Time::microseconds(static_cast<std::int64_t>(i)),
          [&fired] { ++fired; });
    }
    peak_overflow = detail::overflow_events(sim, 0);
    for (std::size_t i = 0; i < n; i += 2) handles[i].cancel();
    sim.run();
    const double elapsed = detail::now_seconds() - start;
    if (fired != n - (n + 1) / 2) {
      std::fprintf(stderr, "queue bench: bad far_future fire count\n");
    }
    out.workloads.push_back({"far_future",
                             static_cast<double>(2 * n) / elapsed,
                             peak_overflow,
                             perf::local().delta_since(before)});
  }

  return out;
}

// One JSON object per workload, newline-separated (JSONL).
// tools/bench_diff.py understands this shape and keys metrics by workload
// name; peak_pending reports the overflow-tier population for far_future.
inline void print_queue_throughput_json(const QueueThroughput& t,
                                        const char* build_label) {
  const char* scheduler = detail::scheduler_label<sim::Simulator>(0);
  for (const QueueWorkloadResult& w : t.workloads) {
    std::printf(
        "{\"bench\":\"event_queue\",\"workload\":\"%s\",\"build\":\"%s\","
        "\"scheduler\":\"%s\",\"ops_per_sec\":%.0f,\"peak_pending\":%zu,"
        "\"counters\":%s}\n",
        w.workload, build_label, scheduler, w.ops_per_sec, w.peak_pending,
        perf::to_json(w.counters).c_str());
  }
}

}  // namespace riptide::bench

#pragma once

// Event-queue throughput driver behind bench_micro's --queue-json mode.
// Exercises the three simulator hot patterns the experiment workload is
// made of and reports ops/sec for each as one machine-readable JSON line,
// so successive PRs can track the event-loop trajectory:
//
//   schedule_fire   - one-shot events scheduled and drained in batches
//                     (the probe/packet delivery path)
//   schedule_cancel - events scheduled then cancelled before firing
//                     (delayed-ACK and pacing timers)
//   rto_rearm       - a retransmission timer cancelled and rearmed on
//                     every simulated ACK (the lazy-cancellation pattern
//                     that used to bloat the heap)
//
// Only the public Simulator API is used, so the same driver links against
// any simulator implementation — numbers are apples-to-apples across PRs.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>

#include "sim/simulator.h"

namespace riptide::bench {

struct QueueThroughput {
  double schedule_fire_ops = 0.0;    // ops/sec
  double schedule_cancel_ops = 0.0;  // ops/sec
  double rto_rearm_ops = 0.0;        // ops/sec
  std::size_t rto_peak_pending = 0;  // max queue size during rto_rearm
};

namespace detail {
inline double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}
}  // namespace detail

inline QueueThroughput measure_queue_throughput(std::size_t total_ops =
                                                    2'000'000) {
  QueueThroughput out;
  const std::size_t batch = 10'000;

  {
    // schedule_fire: realistic queue depth of `batch`, fully drained.
    sim::Simulator sim;
    std::uint64_t sink = 0;
    const double start = detail::now_seconds();
    for (std::size_t done = 0; done < total_ops; done += batch) {
      for (std::size_t i = 0; i < batch; ++i) {
        sim.schedule(sim::Time::microseconds(static_cast<std::int64_t>(i)),
                     [&sink] { ++sink; });
      }
      sim.run();
    }
    out.schedule_fire_ops =
        static_cast<double>(total_ops) / (detail::now_seconds() - start);
    if (sink != total_ops) std::fprintf(stderr, "queue bench: bad sink\n");
  }

  {
    // schedule_cancel: every event cancelled before it can fire.
    sim::Simulator sim;
    std::vector<sim::EventHandle> handles(batch);
    const double start = detail::now_seconds();
    for (std::size_t done = 0; done < total_ops; done += batch) {
      for (std::size_t i = 0; i < batch; ++i) {
        handles[i] = sim.schedule(
            sim::Time::microseconds(static_cast<std::int64_t>(i + 1)), [] {});
      }
      for (auto& h : handles) h.cancel();
      sim.run();
    }
    out.schedule_cancel_ops =
        static_cast<double>(total_ops) / (detail::now_seconds() - start);
  }

  {
    // rto_rearm: one long-lived timer rearmed per simulated ACK, clock
    // creeping forward, with a stream of live short-delay events (the ACKs
    // themselves) keeping the queue head live — TCP's RTO pattern. The
    // cancelled timers sit deep in the queue where head-purging cannot
    // reach them, so unbounded lazy-cancellation growth is visible in
    // rto_peak_pending.
    sim::Simulator sim;
    sim::EventHandle rto;
    std::uint64_t fired = 0;
    const double start = detail::now_seconds();
    for (std::size_t i = 0; i < total_ops; ++i) {
      rto.cancel();
      rto = sim.schedule(sim::Time::milliseconds(200), [&fired] { ++fired; });
      sim.schedule(sim::Time::microseconds(100), [&fired] { ++fired; });
      if (i % 64 == 0) {
        if (sim.pending_events() > out.rto_peak_pending) {
          out.rto_peak_pending = sim.pending_events();
        }
        sim.run_until(sim.now() + sim::Time::microseconds(10));
      }
    }
    if (sim.pending_events() > out.rto_peak_pending) {
      out.rto_peak_pending = sim.pending_events();
    }
    sim.run();
    out.rto_rearm_ops =
        static_cast<double>(total_ops) / (detail::now_seconds() - start);
  }

  return out;
}

inline void print_queue_throughput_json(const QueueThroughput& t,
                                        const char* build_label) {
  std::printf(
      "{\"bench\":\"event_queue\",\"build\":\"%s\","
      "\"schedule_fire_ops_per_sec\":%.0f,"
      "\"schedule_cancel_ops_per_sec\":%.0f,"
      "\"rto_rearm_ops_per_sec\":%.0f,"
      "\"rto_peak_pending\":%zu}\n",
      build_label, t.schedule_fire_ops, t.schedule_cancel_ops,
      t.rto_rearm_ops, t.rto_peak_pending);
}

}  // namespace riptide::bench

// Convergence study (§III-B "the use of history is also flexible"):
// how fast the learned windows ramp from the default toward their fixed
// point under different history weights (alpha) and the max combiner.
//
// Prints the mean learned window across all agents and destinations,
// sampled every 15 simulated seconds. Expected: alpha = 0 tracks
// observations immediately but jitters; alpha = 0.9 ramps visibly slower;
// the max combiner ramps fastest of all. This is the evidence behind the
// paper's choice of a middling alpha: history buys stability, not speed.

#include <cstdio>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "bench_util.h"

using namespace riptide;

namespace {

struct Series {
  std::string label;
  std::vector<double> mean_window;  // one point per 15 s
};

Series run_variant(const std::string& label, double alpha,
                   core::CombinerKind combiner) {
  auto config = bench::paper_world(/*riptide=*/true);
  config.riptide.alpha = alpha;
  config.riptide.combiner = combiner;
  config.duration = sim::Time::minutes(3);

  cdn::Experiment exp(config);
  Series series{label, {}};
  exp.simulator().schedule_periodic(
      sim::Time::seconds(15), sim::Time::seconds(15), [&] {
        double sum = 0.0;
        int n = 0;
        for (const auto& agent : exp.agents()) {
          for (const auto& [dst, state] : agent->table().entries()) {
            sum += state.final_window_segments;
            ++n;
          }
        }
        series.mean_window.push_back(n > 0 ? sum / n : 0.0);
      });
  exp.run();
  return series;
}

}  // namespace

int main() {
  std::printf("Convergence of learned windows (mean across all agents and "
              "destinations, segments)\n");
  bench::print_rule();

  std::vector<Series> all;
  all.push_back(run_variant("alpha=0.0 (no history)", 0.0,
                            core::CombinerKind::kAverage));
  all.push_back(run_variant("alpha=0.5 (paper)", 0.5,
                            core::CombinerKind::kAverage));
  all.push_back(
      run_variant("alpha=0.9 (sluggish)", 0.9, core::CombinerKind::kAverage));
  all.push_back(
      run_variant("max combiner, alpha=0.5", 0.5, core::CombinerKind::kMax));

  std::printf("%-26s", "t (s):");
  for (std::size_t i = 0; i < all.front().mean_window.size(); ++i) {
    std::printf(" %6zu", (i + 1) * 15);
  }
  std::printf("\n");
  for (const auto& series : all) {
    std::printf("%-26s", series.label.c_str());
    for (double v : series.mean_window) std::printf(" %6.1f", v);
    std::printf("\n");
  }
  bench::print_rule();
  std::printf("expected: all variants converge to a similar plateau; higher "
              "alpha lags the ramp, max leads it\n");
  return 0;
}

// Convergence study (§III-B "the use of history is also flexible"):
// how fast the learned windows ramp from the default toward their fixed
// point under different history weights (alpha) and the max combiner.
//
// Prints the mean learned window across all agents and destinations,
// sampled every 15 simulated seconds. Expected: alpha = 0 tracks
// observations immediately but jitters; alpha = 0.9 ramps visibly slower;
// the max combiner ramps fastest of all. This is the evidence behind the
// paper's choice of a middling alpha: history buys stability, not speed.

#include <cstdio>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "runner/parallel_runner.h"
#include "bench_util.h"

using namespace riptide;

namespace {

struct Series {
  std::string label;
  std::vector<double> mean_window;  // one point per 15 s
};

// The sampler rides along inside each experiment via the RunSpec setup
// hook: it runs on the worker that owns the experiment and writes only to
// this variant's Series slot, so variants stay independent.
runner::RunSpec make_variant(Series& series, double alpha,
                             core::CombinerKind combiner) {
  auto config = bench::paper_world(/*riptide=*/true);
  config.riptide.alpha = alpha;
  config.riptide.combiner = combiner;
  config.duration = sim::Time::minutes(3);

  return runner::RunSpec{
      series.label, std::move(config), [&series](cdn::Experiment& exp) {
        exp.simulator().schedule_periodic(
            sim::Time::seconds(15), sim::Time::seconds(15), [&series, &exp] {
              double sum = 0.0;
              int n = 0;
              for (const auto& agent : exp.agents()) {
                for (const auto& [dst, state] : agent->table().entries()) {
                  sum += state.final_window_segments;
                  ++n;
                }
              }
              series.mean_window.push_back(n > 0 ? sum / n : 0.0);
            });
      }};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);
  std::printf("Convergence of learned windows (mean across all agents and "
              "destinations, segments)\n");
  bench::print_rule();

  std::vector<Series> all;
  all.push_back(Series{"alpha=0.0 (no history)", {}});
  all.push_back(Series{"alpha=0.5 (paper)", {}});
  all.push_back(Series{"alpha=0.9 (sluggish)", {}});
  all.push_back(Series{"max combiner, alpha=0.5", {}});

  std::vector<runner::RunSpec> specs;
  specs.push_back(make_variant(all[0], 0.0, core::CombinerKind::kAverage));
  specs.push_back(make_variant(all[1], 0.5, core::CombinerKind::kAverage));
  specs.push_back(make_variant(all[2], 0.9, core::CombinerKind::kAverage));
  specs.push_back(make_variant(all[3], 0.5, core::CombinerKind::kMax));
  runner::ParallelRunner(opt.threads).run(std::move(specs));

  std::printf("%-26s", "t (s):");
  for (std::size_t i = 0; i < all.front().mean_window.size(); ++i) {
    std::printf(" %6zu", (i + 1) * 15);
  }
  std::printf("\n");
  for (const auto& series : all) {
    std::printf("%-26s", series.label.c_str());
    for (double v : series.mean_window) std::printf(" %6.1f", v);
    std::printf("\n");
  }
  bench::print_rule();
  std::printf("expected: all variants converge to a similar plateau; higher "
              "alpha lags the ramp, max leads it\n");
  return 0;
}

// bench_shard_scale — the sharded (PDES) engine and the hybrid-fidelity
// cross-traffic model, measured.
//
// Two sections:
//
//   1. Shard scaling: one fixed multi-PoP world run under the sharded
//      engine at 1/2/4/8 worker shards. Reports events/sec and wall
//      seconds per shard count, plus a metrics digest that must be
//      identical across counts (the engine's determinism contract; the
//      authoritative check is ShardedDeterminismTest).
//
//   2. Hybrid fidelity: a ~million-cross-flow workload simulated twice —
//      full packet-level (organic TCP transfers) vs flow-level fluid
//      aggregates (flow/flow_traffic.h) — with identical probe meshes.
//      Reports the event-count ratio (the whole point of hybrid fidelity:
//      the fluid model costs ~2 events per cross flow instead of 2 per
//      *packet*) and the probe completion percentiles under both, which
//      must agree within noise.
//
// Usage: bench_shard_scale [--quick] [--json]
//   --quick   scale durations/rates down ~10x for CI smoke (the emitted
//             numbers are then not comparable with the checked-in
//             BENCH_shard.json)
//   --json    print the machine-readable JSON document on stdout after
//             the human-readable summary (redirect as needed)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "cdn/pops.h"
#include "stats/cdf.h"
#include "stats/perf.h"

namespace {

using namespace riptide;
using sim::Time;

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Order-insensitive digest of the probe flow records: equal digests across
// shard counts is the cheap in-bench echo of the fingerprint invariant.
std::uint64_t metrics_digest(const cdn::Experiment& exp) {
  std::uint64_t d = 0xcbf29ce484222325ull;
  for (const auto& f : exp.metrics().flows()) {
    d ^= static_cast<std::uint64_t>(f.duration.ns()) +
         static_cast<std::uint64_t>(f.started.ns()) * 1315423911ull +
         f.object_bytes;
    d *= 0x100000001b3ull;
  }
  return d;
}

struct RunCost {
  std::uint64_t events = 0;
  std::uint64_t wire_packets = 0;
  std::uint64_t windows = 0;
  std::uint64_t flow_arrivals = 0;
  double wall_seconds = 0;
};

// Runs one experiment and captures the perf-counter deltas. Sharded runs
// fold worker-thread counters into the caller, so the deltas cover the
// whole execution either way.
RunCost run_and_measure(cdn::Experiment& exp) {
  const perf::Counters before = perf::local();
  const double t0 = wall_now();
  exp.run();
  RunCost cost;
  cost.wall_seconds = wall_now() - t0;
  const perf::Counters delta = perf::local().delta_since(before);
  cost.events = delta.events_dispatched;
  cost.wire_packets = delta.shard_wire_packets;
  cost.windows = delta.shard_windows;
  cost.flow_arrivals = delta.flow_level_flows;
  return cost;
}

double probe_p(const cdn::Experiment& exp, std::uint64_t size, double pct) {
  const auto cdf = exp.metrics().completion_cdf(
      [=](const cdn::FlowRecord& f) { return f.object_bytes == size; });
  return cdf.empty() ? 0.0 : cdf.percentile(pct);
}

// -- Section 1: shard scaling world ----------------------------------------

cdn::ExperimentConfig scaling_config(bool quick) {
  cdn::ExperimentConfig config;
  const auto& all = cdn::default_pop_specs();
  config.pop_specs.assign(all.begin(), all.begin() + 8);
  config.topology.hosts_per_pop = 2;
  config.topology.wan_loss_probability = 2e-4;
  config.riptide_enabled = true;
  config.riptide.update_interval = Time::seconds(1);
  config.probe.interval = Time::seconds(2);
  config.probe.idle_close = Time::seconds(10);
  config.duration = quick ? Time::seconds(30) : Time::seconds(180);
  config.cwnd_sample_interval = Time::seconds(15);
  config.seed = 7;
  return config;
}

// -- Section 2: million-cross-flow world -----------------------------------
//
// 4 PoPs, full probe mesh, cross traffic on all 12 directed WAN pairs.
// Packet level: one organic TCP source per PoP pushing size-distributed
// transfers to random peers. Hybrid: the fluid model at the same flow
// arrival rate and mean size per link. Sizes are kept small (~27 KB mean)
// so the packet-level side stays runnable; a million 27 KB flows is still
// ~45 packet events per flow vs ~2 fluid events.

constexpr double kFullFlowsPerLink = 139.0;  // x 12 links x 600 s ~ 1.0M
constexpr double kMeanFlowBytes = 27e3;

cdn::ExperimentConfig hybrid_base(bool quick) {
  cdn::ExperimentConfig config;
  const auto& all = cdn::default_pop_specs();
  config.pop_specs.assign(all.begin(), all.begin() + 4);
  config.topology.hosts_per_pop = 1;
  config.topology.wan_loss_probability = 2e-4;
  // Riptide learning is OFF for the fidelity comparison: agents would
  // harvest windows from the packet-level organic connections (Fig 11),
  // which the fluid model deliberately does not create — that's a modeling
  // boundary, not noise, and it would swamp the congestion comparison the
  // hybrid model is accountable for.
  config.riptide_enabled = false;
  config.probe.interval = Time::seconds(5);
  config.probe.idle_close = Time::seconds(10);
  config.duration = quick ? Time::seconds(60) : Time::seconds(600);
  config.cwnd_sample_interval = Time::seconds(30);
  config.seed = 11;
  return config;
}

cdn::ExperimentConfig packet_level_config(bool quick) {
  cdn::ExperimentConfig config = hybrid_base(quick);
  // Organic sources are per-PoP and pick a random destination per
  // transfer, so a per-link rate of F means a per-source rate of
  // F * (pops - 1).
  cdn::OrganicSourceConfig organic;
  organic.mean_interarrival_seconds = 1.0 / (kFullFlowsPerLink * 3);
  // Two-component lognormal with ~27 KB mean — same mean the fluid model
  // below is given, so both runs offer the same load.
  cdn::FileSizeDistribution::Params sizes;
  sizes.weight_small = 0.5;
  sizes.mu_small = 8.006;      // ln(3000)
  sizes.sigma_small = 1.0;
  sizes.mu_large = 10.309;     // ln(30000)
  sizes.sigma_large = 1.0;
  sizes.max_bytes = 10ull * 1024 * 1024;
  organic.sizes = cdn::FileSizeDistribution(sizes);
  config.organic = organic;
  config.organic_source_pops = {0, 1, 2, 3};
  return config;
}

cdn::ExperimentConfig hybrid_config(bool quick) {
  cdn::ExperimentConfig config = hybrid_base(quick);
  config.flow_traffic.enabled = true;  // all PoPs by default
  config.flow_traffic.model.flows_per_second = kFullFlowsPerLink;
  config.flow_traffic.model.mean_flow_bytes = kMeanFlowBytes;
  config.flow_traffic.model.pareto_alpha = 0.0;  // exponential sizes
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json]\n", argv[0]);
      return 2;
    }
  }
#ifdef __OPTIMIZE__
  const char* build = "optimized";
#else
  const char* build = "unoptimized";
  std::fprintf(stderr, "WARNING: unoptimized build; numbers are "
                       "meaningless. Use -DCMAKE_BUILD_TYPE=Release.\n");
#endif

  // ---- Section 1: shard scaling ----
  std::printf("== shard scaling: 8 PoPs x 2 hosts, %s ==\n",
              quick ? "30 s (quick)" : "180 s");
  std::printf("  %7s %14s %12s %10s %8s %18s\n", "shards", "events",
              "events/sec", "wall s", "windows", "digest");
  struct ScaleRow {
    std::size_t shards;
    RunCost cost;
    std::uint64_t digest;
  };
  std::vector<ScaleRow> scale_rows;
  bool digests_match = true;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
    cdn::ExperimentConfig config = scaling_config(quick);
    config.sharding.enabled = true;
    config.sharding.shards = shards;
    cdn::Experiment exp(config);
    const RunCost cost = run_and_measure(exp);
    const std::uint64_t digest = metrics_digest(exp);
    if (!scale_rows.empty() && digest != scale_rows.front().digest) {
      digests_match = false;
    }
    std::printf("  %7zu %14llu %12.0f %10.3f %8llu   %016llx\n", shards,
                static_cast<unsigned long long>(cost.events),
                static_cast<double>(cost.events) / cost.wall_seconds,
                cost.wall_seconds,
                static_cast<unsigned long long>(cost.windows),
                static_cast<unsigned long long>(digest));
    scale_rows.push_back({shards, cost, digest});
  }
  std::printf("  metrics digests %s across shard counts\n",
              digests_match ? "IDENTICAL" : "DIVERGED (BUG)");

  // ---- Section 2: hybrid fidelity ----
  std::printf("\n== hybrid fidelity: 4 PoPs, ~%s cross flows, %s ==\n",
              quick ? "100k" : "1M", quick ? "60 s (quick)" : "600 s");

  cdn::ExperimentConfig pkt_config = packet_level_config(quick);
  cdn::Experiment pkt(pkt_config);
  const RunCost pkt_cost = run_and_measure(pkt);
  std::uint64_t pkt_flows = 0;
  for (const auto& src : pkt.organic_sources()) {
    pkt_flows += src->transfers_started();
  }

  cdn::ExperimentConfig hyb_config = hybrid_config(quick);
  cdn::Experiment hyb(hyb_config);
  const RunCost hyb_cost = run_and_measure(hyb);
  std::uint64_t hyb_flows = 0;
  for (const auto& load : hyb.flow_loads()) {
    hyb_flows += load->flows_started();
  }

  const double ratio = hyb_cost.events > 0
                           ? static_cast<double>(pkt_cost.events) /
                                 static_cast<double>(hyb_cost.events)
                           : 0.0;
  std::printf("  %-14s %14s %12s %10s %10s %10s\n", "fidelity", "events",
              "cross flows", "wall s", "p50 100KB", "p90 100KB");
  std::printf("  %-14s %14llu %12llu %10.2f %10.0f %10.0f\n", "packet-level",
              static_cast<unsigned long long>(pkt_cost.events),
              static_cast<unsigned long long>(pkt_flows),
              pkt_cost.wall_seconds, probe_p(pkt, 100'000, 50),
              probe_p(pkt, 100'000, 90));
  std::printf("  %-14s %14llu %12llu %10.2f %10.0f %10.0f\n", "hybrid",
              static_cast<unsigned long long>(hyb_cost.events),
              static_cast<unsigned long long>(hyb_flows),
              hyb_cost.wall_seconds, probe_p(hyb, 100'000, 50),
              probe_p(hyb, 100'000, 90));
  std::printf("  packet-level / hybrid event ratio: %.1fx (target >= 5x)\n",
              ratio);

  if (json) {
    std::printf("{\"bench\":\"shard_scale\",\"build\":\"%s\",\"quick\":%s,"
                "\"scaling\":[",
                build, quick ? "true" : "false");
    for (std::size_t i = 0; i < scale_rows.size(); ++i) {
      const ScaleRow& r = scale_rows[i];
      std::printf("%s{\"shards\":%zu,\"events\":%llu,"
                  "\"events_per_sec\":%.0f,\"wall_seconds\":%.3f,"
                  "\"windows\":%llu,\"wire_packets\":%llu}",
                  i == 0 ? "" : ",", r.shards,
                  static_cast<unsigned long long>(r.cost.events),
                  static_cast<double>(r.cost.events) / r.cost.wall_seconds,
                  r.cost.wall_seconds,
                  static_cast<unsigned long long>(r.cost.windows),
                  static_cast<unsigned long long>(r.cost.wire_packets));
    }
    std::printf("],\"digests_match\":%s,\"hybrid\":{"
                "\"packet_level\":{\"events\":%llu,\"cross_flows\":%llu,"
                "\"wall_seconds\":%.2f,\"probe_p50_ms\":%.1f,"
                "\"probe_p90_ms\":%.1f},"
                "\"flow_level\":{\"events\":%llu,\"cross_flows\":%llu,"
                "\"wall_seconds\":%.2f,\"probe_p50_ms\":%.1f,"
                "\"probe_p90_ms\":%.1f,\"fluid_arrivals\":%llu},"
                "\"event_ratio\":%.2f}}\n",
                digests_match ? "true" : "false",
                static_cast<unsigned long long>(pkt_cost.events),
                static_cast<unsigned long long>(pkt_flows),
                pkt_cost.wall_seconds, probe_p(pkt, 100'000, 50),
                probe_p(pkt, 100'000, 90),
                static_cast<unsigned long long>(hyb_cost.events),
                static_cast<unsigned long long>(hyb_flows),
                hyb_cost.wall_seconds, probe_p(hyb, 100'000, 50),
                probe_p(hyb, 100'000, 90),
                static_cast<unsigned long long>(hyb_cost.flow_arrivals),
                ratio);
  }
  return digests_match ? 0 : 1;
}

// Reproduces paper Fig 4: theoretical gain (percentage reduction in RTTs)
// from initcwnd 25/50/100 relative to the default 10, as a function of
// file size.
//
// Paper shape: gains concentrate between 15 KB and ~1000 KB and diminish
// for very large files (which need many RTTs regardless).

#include <cstdio>
#include <vector>

#include "model/transfer_model.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace riptide;
  bench::parse_bench_options(argc, argv);

  const std::vector<std::uint32_t> windows = {25, 50, 100};
  std::printf("Fig 4: %% reduction in RTTs vs initcwnd 10, by file size\n");
  bench::print_rule();
  std::printf("%10s", "size KB");
  for (auto iw : windows) std::printf("     iw=%-3u", iw);
  std::printf("\n");

  const std::vector<double> sizes_kb = {1,    5,    10,   15,   25,  50,
                                        75,   100,  150,  250,  500, 1000,
                                        2500, 5000, 10000};
  for (double kb : sizes_kb) {
    std::printf("%10.0f", kb);
    for (auto iw : windows) {
      const double gain = model::rtt_reduction(
          static_cast<std::uint64_t>(kb * 1000), 10, iw);
      std::printf("  %8.1f%%", gain * 100.0);
    }
    std::printf("\n");
  }

  bench::print_rule();
  std::printf("expected shape: ~0%% below 15 KB, peak gains 15-1000 KB, "
              "diminishing beyond 1 MB\n");
  return 0;
}

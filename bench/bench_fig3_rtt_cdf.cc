// Reproduces paper Fig 3: CDF of the number of RTTs needed to transfer
// files drawn from the Fig 2 size distribution, for initial congestion
// windows of 10, 25, 50 and 100 (no loss, no delay — the §II-B model).
//
// Paper shape: IW50 moves >31% more files into single-RTT completion than
// IW10; IW100 leaves only ~15% needing more than one RTT.

#include <cstdio>
#include <map>
#include <vector>

#include "cdn/file_size_dist.h"
#include "model/transfer_model.h"
#include "runner/task_pool.h"
#include "sim/random.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace riptide;
  const auto opt = bench::parse_bench_options(argc, argv);

  cdn::FileSizeDistribution dist;
  sim::Rng rng(2016);
  const int n = 500'000;
  std::vector<std::uint64_t> sizes;
  sizes.reserve(n);
  for (int i = 0; i < n; ++i) sizes.push_back(dist.sample(rng));

  const std::vector<std::uint32_t> windows = {10, 25, 50, 100};
  std::printf("Fig 3: CDF of RTTs to complete transfer, by initcwnd\n");
  bench::print_rule();
  std::printf("%8s", "RTTs");
  for (auto iw : windows) std::printf("     iw=%-3u", iw);
  std::printf("\n");

  // Each initcwnd's histogram is an independent pass over the sizes.
  const auto histograms =
      runner::parallel_map<std::map<std::uint32_t, int>>(
          opt.threads, windows.size(), [&](std::size_t w) {
            model::ModelParams params{1460, windows[w]};
            std::map<std::uint32_t, int> hist;  // rtts -> n
            for (auto size : sizes) {
              ++hist[model::rtts_for_transfer(size, params)];
            }
            return hist;
          });
  std::map<std::uint32_t, std::map<std::uint32_t, int>> counts;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    counts[windows[w]] = histograms[w];
  }

  for (std::uint32_t rtts = 1; rtts <= 8; ++rtts) {
    std::printf("%8u", rtts);
    for (auto iw : windows) {
      int cum = 0;
      for (const auto& [r, c] : counts[iw]) {
        if (r <= rtts) cum += c;
      }
      std::printf("  %8.3f ", static_cast<double>(cum) / n);
    }
    std::printf("\n");
  }

  bench::print_rule();
  auto one_rtt = [&](std::uint32_t iw) {
    int cum = 0;
    for (const auto& [r, c] : counts[iw]) {
      if (r <= 1) cum += c;
    }
    return static_cast<double>(cum) / n;
  };
  std::printf("files completing in 1 RTT:  iw10=%.3f  iw50=%.3f  "
              "(paper: +31%% more at iw50)  iw100=%.3f (paper: all but ~15%%)\n",
              one_rtt(10), one_rtt(50), one_rtt(100));
  std::printf("gain iw10 -> iw50 at 1 RTT: +%.1f%%\n",
              (one_rtt(50) - one_rtt(10)) * 100.0);
  return 0;
}

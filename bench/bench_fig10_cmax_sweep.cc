// Reproduces paper Fig 10: the CDF of live congestion windows sampled via
// `ss` across all datacenters, for Riptide with c_max in {50, 100, 150,
// 200, 250} plus a no-Riptide control.
//
// Paper shape: Riptide at least doubles the median window over the
// control; each c_max curve develops a mode at its own cap (idle
// connections parked at their initial window); returns diminish past
// c_max = 100 (the knee the paper picks).
//
// Scale note: the paper samples each minute over 12 h of production
// traffic; this harness samples every 15 s over minutes of simulated probe
// traffic on the 34-PoP topology — the distributional shape is what is
// compared. The six configurations are independent experiments, fanned
// across --threads workers.

#include <cstdio>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "runner/parallel_runner.h"
#include "runner/sweep.h"
#include "stats/histogram.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace riptide;
  const auto opt = bench::parse_bench_options(argc, argv);

  auto base = bench::paper_world(/*riptide=*/true);
  base.seed = opt.seeds.front();

  runner::SweepSpec sweep(base);
  sweep.variant("control (no riptide)",
                [](cdn::ExperimentConfig& c) { c.riptide_enabled = false; });
  for (std::uint32_t c_max : {50u, 100u, 150u, 200u, 250u}) {
    sweep.variant("riptide c_max=" + std::to_string(c_max),
                  [c_max](cdn::ExperimentConfig& c) {
                    c.riptide.c_max = c_max;
                  });
  }

  const auto results =
      runner::ParallelRunner(opt.threads).run(sweep.materialize());

  const std::vector<double> percentiles = {10, 25, 50, 75, 90, 99};
  std::printf("Fig 10: live congestion window CDF by c_max (segments)\n");
  bench::print_rule();
  bench::print_percentile_header("configuration", percentiles);

  stats::Cdf control_cdf;
  double median_at_100 = 0.0;
  for (const auto& result : results) {
    const auto cdf = result.experiment->metrics().cwnd_cdf();
    bench::print_cdf_row(result.label, cdf, percentiles);
    if (result.index == 0) control_cdf = cdf;
    if (result.label == "riptide c_max=100") {
      median_at_100 = cdf.percentile(50);
      // The per-c_max mode the paper describes: histogram around the cap.
      stats::Histogram hist(0.0, 300.0, 30);
      for (double v : cdf.sorted_samples()) hist.add(v);
      const auto mode = hist.mode_bucket();
      std::printf("  (c_max=100 modal window bucket: [%.0f, %.0f) segments)\n",
                  hist.bucket_lo(mode), hist.bucket_hi(mode));
    }
  }

  bench::print_rule();
  std::printf("median increase, riptide c_max=100 vs control: +%.0f%% "
              "(paper: ~+100%% at c_max=50, ~200%% overall claim)\n",
              (median_at_100 / control_cdf.percentile(50) - 1.0) * 100.0);
  return 0;
}

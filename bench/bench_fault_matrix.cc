// Fault matrix: probe completion percentiles and safety counters under a
// battery of injected failures, treatment (Riptide on) vs control, fanned
// across --threads workers via the parallel runner.
//
// Each scenario is a declarative FaultPlan (see src/faults/fault_plan.h
// for the spec grammar). Network faults hit both arms identically;
// agent-side faults (actuator, poll, crash) only have a subject in the
// treatment arm. The interesting outputs are (a) how much of the
// no-fault gain survives each failure mode, and (b) the safety metric:
// retransmissions/timeouts must not blow up because a hardened agent kept
// pushing stale windows.
//
//   --spec "<fault spec>"   run one custom scenario instead of the matrix
//   --duration S            simulated seconds per run (default 150)
//   --pops N                leading PoPs of the paper roster (default 6)
//   --threads/--seeds/--json as every bench

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "cdn/experiment.h"
#include "faults/harness.h"
#include "runner/parallel_runner.h"
#include "runner/sweep.h"
#include "runner/task_pool.h"
#include "bench_util.h"

using namespace riptide;

namespace {

struct Scenario {
  std::string name;
  std::string spec;  // FaultPlan::parse grammar; empty = no faults
};

std::vector<Scenario> default_matrix() {
  return {
      {"baseline", ""},
      {"link-flap", "@30 flap 0-1 5 6"},
      {"loss-burst", "@30 loss 0-1 0.05 30"},
      {"degrade", "@30 rate 0-1 0.25 30; @30 delay 0-1 50 30"},
      {"actuator-30", "@10 actuator-fail 0.3 60"},
      {"poll-fail", "@10 poll-fail 0.5 60"},
      {"poll-partial", "@10 poll-partial 0.5 60"},
      {"crash-cold", "@60 crash -1 10 cold"},
      {"crash-warm", "@60 crash -1 10 warm"},
      {"combined", "@20 flap 0-1 5 6; @40 actuator-fail 0.3 40; "
                   "@80 loss 0-1 0.05 20"},
  };
}

// Sum of the hardening counters across an experiment's agents.
core::AgentStats agent_totals(const cdn::Experiment& e) {
  core::AgentStats total;
  for (const auto& agent : e.agents()) {
    const core::AgentStats& s = agent->stats();
    total.polls += s.polls;
    total.routes_set += s.routes_set;
    total.routes_expired += s.routes_expired;
    total.polls_failed += s.polls_failed;
    total.actuator_failures += s.actuator_failures;
    total.actuator_retries += s.actuator_retries;
    total.actuator_dead_letters += s.actuator_dead_letters;
    total.staleness_decays += s.staleness_decays;
    total.staleness_withdrawals += s.staleness_withdrawals;
    total.crashes += s.crashes;
    total.restarts += s.restarts;
    total.routes_adopted += s.routes_adopted;
  }
  return total;
}

// Completion CDF for `size`-byte probes from every source, merged across
// the runs of one scenario arm.
stats::Cdf merged_cdf(const std::vector<const cdn::Experiment*>& runs,
                      std::uint64_t size) {
  stats::Cdf merged;
  for (const cdn::Experiment* run : runs) {
    const std::size_t pops = run->topology().pop_count();
    for (std::size_t src = 0; src < pops; ++src) {
      merged.add_all(
          run->probe_cdf(static_cast<int>(src), size).sorted_samples());
    }
  }
  return merged;
}

struct Options {
  bench::BenchOptions base;
  std::string custom_spec;
  bool has_custom = false;
  double duration_s = 150.0;
  std::size_t pops = 6;
};

Options parse_args(int argc, char** argv) {
  bench::warn_if_unoptimized();
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      opt.base.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--seeds" && i + 1 < argc) {
      opt.base.seeds.clear();
      const char* p = argv[++i];
      while (*p != '\0') {
        char* end = nullptr;
        opt.base.seeds.push_back(std::strtoull(p, &end, 10));
        p = (*end == ',') ? end + 1 : end;
      }
      if (opt.base.seeds.empty()) opt.base.seeds = {1};
    } else if (arg == "--json") {
      opt.base.json = true;
    } else if (arg == "--spec" && i + 1 < argc) {
      opt.custom_spec = argv[++i];
      opt.has_custom = true;
    } else if (arg == "--duration" && i + 1 < argc) {
      opt.duration_s = std::atof(argv[++i]);
    } else if (arg == "--pops" && i + 1 < argc) {
      opt.pops = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--seeds a,b,c] [--json] "
                   "[--spec \"<fault spec>\"] [--duration S] [--pops N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  auto base = bench::paper_world(/*riptide=*/true);
  if (opt.pops > 0 && opt.pops < base.pop_specs.size()) {
    base.pop_specs.resize(opt.pops);
  }
  base.duration = sim::Time::from_seconds(opt.duration_s);
  // The hardening paths under test: staleness guard on, adoption on.
  base.riptide.staleness_guard = true;

  const std::vector<Scenario> matrix =
      opt.has_custom ? std::vector<Scenario>{{"custom", opt.custom_spec}}
                     : default_matrix();

  runner::SweepSpec sweep(base);
  sweep.seeds(opt.base.seeds).treatment_control();
  for (const Scenario& scenario : matrix) {
    // Parse eagerly so a bad spec dies with its message, not inside a
    // worker thread.
    faults::FaultPlan plan = faults::FaultPlan::parse(scenario.spec);
    sweep.variant(scenario.name,
                  [plan = std::move(plan)](cdn::ExperimentConfig& config) {
                    faults::FaultHarness::install(config, plan);
                  });
  }

  const runner::ParallelRunner pool(opt.base.threads);
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = pool.run(sweep.materialize());
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  constexpr std::uint64_t kProbeBytes = 50'000;
  const std::size_t runs_per_scenario = opt.base.seeds.size() * 2;

  std::printf("fault matrix: %zu scenario(s) x %zu seed(s) x "
              "{treatment, control}, %zu PoPs, %.0f s simulated, "
              "%llu-byte probes\n",
              matrix.size(), opt.base.seeds.size(), base.pop_specs.size(),
              opt.duration_s, static_cast<unsigned long long>(kProbeBytes));
  bench::print_rule();
  std::printf("%-14s %-10s %8s %8s %8s %7s %9s %8s %9s %7s %7s %6s %6s\n",
              "scenario", "arm", "p50", "p90", "p99", "n", "retrans",
              "timeouts", "linkdown", "actfail", "retries", "dead",
              "stale");

  for (std::size_t s = 0; s < matrix.size(); ++s) {
    for (int arm = 0; arm < 2; ++arm) {
      const bool is_treatment = arm == 0;
      std::vector<const cdn::Experiment*> runs;
      std::uint64_t retrans = 0, timeouts = 0;
      cdn::Topology::DropTotals drops;
      core::AgentStats agents;
      for (std::size_t seed = 0; seed < opt.base.seeds.size(); ++seed) {
        const std::size_t index =
            s * runs_per_scenario + seed * 2 + static_cast<std::size_t>(arm);
        const cdn::Experiment& e = *results[index].experiment;
        runs.push_back(&e);
        retrans += e.topology().total_retransmissions();
        timeouts += e.topology().total_timeouts();
        const auto d = e.topology().drop_totals();
        drops.queue_full += d.queue_full;
        drops.random_loss += d.random_loss;
        drops.link_down += d.link_down;
        drops.no_route += d.no_route;
        const auto a = agent_totals(e);
        agents.polls_failed += a.polls_failed;
        agents.actuator_failures += a.actuator_failures;
        agents.actuator_retries += a.actuator_retries;
        agents.actuator_dead_letters += a.actuator_dead_letters;
        agents.staleness_decays += a.staleness_decays;
        agents.staleness_withdrawals += a.staleness_withdrawals;
        agents.crashes += a.crashes;
        agents.restarts += a.restarts;
      }
      const stats::Cdf cdf = merged_cdf(runs, kProbeBytes);
      const char* arm_name = is_treatment ? "treatment" : "control";
      if (cdf.empty()) {
        std::printf("%-14s %-10s  (no samples)\n", matrix[s].name.c_str(),
                    arm_name);
        continue;
      }
      std::printf("%-14s %-10s %8.1f %8.1f %8.1f %7zu %9llu %8llu %9llu "
                  "%7llu %7llu %6llu %6llu\n",
                  matrix[s].name.c_str(), arm_name, cdf.percentile(50),
                  cdf.percentile(90), cdf.percentile(99), cdf.count(),
                  static_cast<unsigned long long>(retrans),
                  static_cast<unsigned long long>(timeouts),
                  static_cast<unsigned long long>(drops.link_down),
                  static_cast<unsigned long long>(agents.actuator_failures),
                  static_cast<unsigned long long>(agents.actuator_retries),
                  static_cast<unsigned long long>(agents.actuator_dead_letters),
                  static_cast<unsigned long long>(
                      agents.staleness_decays + agents.staleness_withdrawals));
      if (opt.base.json) {
        std::printf(
            "{\"bench\":\"fault_matrix\",\"scenario\":\"%s\",\"arm\":\"%s\","
            "\"p50_ms\":%.3f,\"p90_ms\":%.3f,\"p99_ms\":%.3f,\"samples\":%zu,"
            "\"drops\":{\"queue_full\":%llu,\"random_loss\":%llu,"
            "\"link_down\":%llu,\"no_route\":%llu},"
            "\"retransmissions\":%llu,\"timeouts\":%llu,"
            "\"agent\":{\"polls_failed\":%llu,\"actuator_failures\":%llu,"
            "\"actuator_retries\":%llu,\"actuator_dead_letters\":%llu,"
            "\"staleness_decays\":%llu,\"staleness_withdrawals\":%llu,"
            "\"crashes\":%llu,\"restarts\":%llu}}\n",
            matrix[s].name.c_str(), arm_name, cdf.percentile(50),
            cdf.percentile(90), cdf.percentile(99), cdf.count(),
            static_cast<unsigned long long>(drops.queue_full),
            static_cast<unsigned long long>(drops.random_loss),
            static_cast<unsigned long long>(drops.link_down),
            static_cast<unsigned long long>(drops.no_route),
            static_cast<unsigned long long>(retrans),
            static_cast<unsigned long long>(timeouts),
            static_cast<unsigned long long>(agents.polls_failed),
            static_cast<unsigned long long>(agents.actuator_failures),
            static_cast<unsigned long long>(agents.actuator_retries),
            static_cast<unsigned long long>(agents.actuator_dead_letters),
            static_cast<unsigned long long>(agents.staleness_decays),
            static_cast<unsigned long long>(agents.staleness_withdrawals),
            static_cast<unsigned long long>(agents.crashes),
            static_cast<unsigned long long>(agents.restarts));
      }
    }
  }

  double sum_run_seconds = 0.0;
  for (const auto& result : results) sum_run_seconds += result.wall_seconds;
  std::printf("sweep: %zu runs on %u worker(s): %.2f s wall, %.2f s summed "
              "run time\n",
              results.size(),
              runner::effective_threads(opt.base.threads, results.size()),
              sweep_seconds, sum_run_seconds);
  return 0;
}

// Fault matrix: probe completion percentiles and safety counters under a
// battery of injected failures, treatment (Riptide on) vs control, fanned
// across --threads workers via the parallel runner.
//
// Each scenario is a declarative FaultPlan (see src/faults/fault_plan.h
// for the spec grammar). Network faults hit both arms identically;
// agent-side faults (actuator, poll, crash) only have a subject in the
// treatment arm. The interesting outputs are (a) how much of the
// no-fault gain survives each failure mode, and (b) the safety metric:
// retransmissions/timeouts must not blow up because a hardened agent kept
// pushing stale windows.
//
// The recovery scenarios (reboot-*, snap-corrupt, route-drift,
// gov-rollback) additionally report, per treatment run, the time for the
// host-wide installed-initcwnd total to climb back to 90% of its
// pre-crash steady state — sampled once per simulated second by a
// read-only probe that leaves the simulation untouched. Durable-state
// knobs are enabled per scenario; every legacy scenario runs with the
// knobs at their defaults and its output stays byte-identical.
//
//   --spec "<fault spec>"   run one custom scenario instead of the matrix
//   --duration S            simulated seconds per run (default 150)
//   --pops N                leading PoPs of the paper roster (default 6)
//   --threads/--seeds/--json as every bench

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cdn/experiment.h"
#include "faults/harness.h"
#include "runner/parallel_runner.h"
#include "stats/perf.h"
#include "runner/sweep.h"
#include "runner/task_pool.h"
#include "bench_util.h"

using namespace riptide;

namespace {

struct Scenario {
  std::string name;
  std::string spec;  // FaultPlan::parse grammar; empty = no faults
  // Durable-state knobs this scenario turns on (empty = defaults). Also
  // the cue to report the extended JSON block: legacy scenarios keep
  // their historical output bytes.
  std::function<void(cdn::ExperimentConfig&)> knobs;
  double crash_s = -1.0;    // recovery scenarios: when the crash fires
  double restart_s = -1.0;  // ... and when the agents come back
};

std::vector<Scenario> default_matrix() {
  std::vector<Scenario> matrix = {
      {"baseline", "", {}},
      {"link-flap", "@30 flap 0-1 5 6", {}},
      {"loss-burst", "@30 loss 0-1 0.05 30", {}},
      {"degrade", "@30 rate 0-1 0.25 30; @30 delay 0-1 50 30", {}},
      {"actuator-30", "@10 actuator-fail 0.3 60", {}},
      {"poll-fail", "@10 poll-fail 0.5 60", {}},
      {"poll-partial", "@10 poll-partial 0.5 60", {}},
      {"crash-cold", "@60 crash -1 10 cold", {}},
      {"crash-warm", "@60 crash -1 10 warm", {}},
      {"combined", "@20 flap 0-1 5 6; @40 actuator-fail 0.3 40; "
                   "@80 loss 0-1 0.05 20",
       {}},
  };

  const auto snapshots_on = [](cdn::ExperimentConfig& config) {
    config.riptide.checkpoint_interval = sim::Time::seconds(2);
  };
  // Host reboot: process AND learned routes die. Cold pays the full
  // re-learning horizon; warm restores the persisted table and reprograms
  // routes before the first poll.
  matrix.push_back({"reboot-cold", "@60 crash -1 5 reboot-cold",
                    /*knobs=*/[](cdn::ExperimentConfig&) {}, 60.0, 65.0});
  matrix.push_back(
      {"reboot-warm", "@60 crash -1 5 reboot-warm", snapshots_on, 60.0, 65.0});
  // Newest snapshot gets a header bit flipped just before the reboot:
  // restore must fall back to the previous generation, not crash or come
  // up empty. Offset 13 lands inside the header, rejecting the whole
  // snapshot; @59 sits between the last two checkpoint ticks (even
  // seconds) so no fresh snapshot papers over the damage.
  matrix.push_back({"snap-corrupt",
                    "@59 snap-corrupt -1 13; @60 crash -1 5 reboot-warm",
                    snapshots_on, 60.0, 65.0});
  // An outside actor deletes half the learned routes and mangles a
  // quarter; the reconciler must repair the drift within a poll.
  matrix.push_back({"route-drift", "@60 route-drift -1 0.5 0.25",
                    [](cdn::ExperimentConfig& config) {
                      config.riptide.reconcile_routes = true;
                    }});
  // Host-wide loss burst: the governor's emergency rollback withdraws
  // every learned route, cools down, then re-learns.
  matrix.push_back({"gov-rollback", "@60 loss 0-1 0.3 20",
                    [](cdn::ExperimentConfig& config) {
                      config.riptide.governor_rollback_retrans_fraction = 0.05;
                      config.riptide.governor_min_packets = 50;
                      config.riptide.governor_cooldown = sim::Time::seconds(10);
                    }});
  return matrix;
}

// One reading of the host-wide installed-initcwnd total (treatment arm
// only; control has no agents and stays at zero).
struct RouteSample {
  double t_s = 0.0;
  double total_initcwnd = 0.0;
};
using SampleSeries = std::vector<RouteSample>;

// Seconds after restart_s until the installed total regains 90% of its
// last pre-crash value; negative when never (or when there was nothing to
// regain).
double recovery_seconds(const SampleSeries& samples, double crash_s,
                        double restart_s) {
  double steady = 0.0;
  for (const RouteSample& sample : samples) {
    if (sample.t_s < crash_s) steady = sample.total_initcwnd;
  }
  if (steady <= 0.0) return -1.0;
  for (const RouteSample& sample : samples) {
    if (sample.t_s < restart_s) continue;
    if (sample.total_initcwnd >= 0.9 * steady) {
      return sample.t_s - restart_s;
    }
  }
  return -1.0;
}

// Sum of the hardening counters across an experiment's agents.
core::AgentStats agent_totals(const cdn::Experiment& e) {
  core::AgentStats total;
  for (const auto& agent : e.agents()) {
    const core::AgentStats& s = agent->stats();
    total.polls += s.polls;
    total.routes_set += s.routes_set;
    total.routes_expired += s.routes_expired;
    total.polls_failed += s.polls_failed;
    total.actuator_failures += s.actuator_failures;
    total.actuator_retries += s.actuator_retries;
    total.actuator_dead_letters += s.actuator_dead_letters;
    total.staleness_decays += s.staleness_decays;
    total.staleness_withdrawals += s.staleness_withdrawals;
    total.crashes += s.crashes;
    total.restarts += s.restarts;
    total.routes_adopted += s.routes_adopted;
    total.reconcile_repaired += s.reconcile_repaired;
    total.reconcile_orphaned += s.reconcile_orphaned;
    total.reconcile_conflicting += s.reconcile_conflicting;
    total.governor_budget_scaledowns += s.governor_budget_scaledowns;
    total.governor_hysteresis_skips += s.governor_hysteresis_skips;
    total.governor_rollbacks += s.governor_rollbacks;
    total.governor_routes_rolled_back += s.governor_routes_rolled_back;
    total.governor_cooldown_polls += s.governor_cooldown_polls;
  }
  return total;
}

// Completion CDF for `size`-byte probes from every source, merged across
// the runs of one scenario arm.
stats::Cdf merged_cdf(const std::vector<const cdn::Experiment*>& runs,
                      std::uint64_t size) {
  stats::Cdf merged;
  for (const cdn::Experiment* run : runs) {
    const std::size_t pops = run->topology().pop_count();
    for (std::size_t src = 0; src < pops; ++src) {
      merged.add_all(
          run->probe_cdf(static_cast<int>(src), size).sorted_samples());
    }
  }
  return merged;
}

struct Options {
  bench::BenchOptions base;
  std::string custom_spec;
  bool has_custom = false;
  double duration_s = 150.0;
  std::size_t pops = 6;
};

Options parse_args(int argc, char** argv) {
  bench::warn_if_unoptimized();
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      opt.base.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--seeds" && i + 1 < argc) {
      opt.base.seeds.clear();
      const char* p = argv[++i];
      while (*p != '\0') {
        char* end = nullptr;
        opt.base.seeds.push_back(std::strtoull(p, &end, 10));
        p = (*end == ',') ? end + 1 : end;
      }
      if (opt.base.seeds.empty()) opt.base.seeds = {1};
    } else if (arg == "--json") {
      opt.base.json = true;
    } else if (arg == "--spec" && i + 1 < argc) {
      opt.custom_spec = argv[++i];
      opt.has_custom = true;
    } else if (arg == "--duration" && i + 1 < argc) {
      opt.duration_s = std::atof(argv[++i]);
    } else if (arg == "--pops" && i + 1 < argc) {
      opt.pops = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--seeds a,b,c] [--json] "
                   "[--spec \"<fault spec>\"] [--duration S] [--pops N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  auto base = bench::paper_world(/*riptide=*/true);
  if (opt.pops > 0 && opt.pops < base.pop_specs.size()) {
    base.pop_specs.resize(opt.pops);
  }
  base.duration = sim::Time::from_seconds(opt.duration_s);
  // The hardening paths under test: staleness guard on, adoption on.
  base.riptide.staleness_guard = true;

  const std::vector<Scenario> matrix =
      opt.has_custom ? std::vector<Scenario>{{"custom", opt.custom_spec, {}}}
                     : default_matrix();

  runner::SweepSpec sweep(base);
  sweep.seeds(opt.base.seeds).treatment_control();
  for (const Scenario& scenario : matrix) {
    // Parse eagerly so a bad spec dies with its message, not inside a
    // worker thread.
    faults::FaultPlan plan = faults::FaultPlan::parse(scenario.spec);
    sweep.variant(scenario.name,
                  [plan = std::move(plan),
                   knobs = scenario.knobs](cdn::ExperimentConfig& config) {
                    if (knobs) knobs(config);
                    faults::FaultHarness::install(config, plan);
                  });
  }

  // Attach the per-second installed-initcwnd sampler to every run. It
  // only reads the routing tables, so simulation outputs are unchanged;
  // the series feed the recovery-time metric of the crash scenarios.
  std::vector<runner::RunSpec> specs = sweep.materialize();
  std::vector<std::shared_ptr<SampleSeries>> series;
  series.reserve(specs.size());
  for (runner::RunSpec& spec : specs) {
    auto samples = std::make_shared<SampleSeries>();
    series.push_back(samples);
    spec.setup = [samples](cdn::Experiment& e) {
      e.simulator().schedule_periodic(
          sim::Time::seconds(1), sim::Time::seconds(1), [samples, &e] {
            double total = 0.0;
            for (const auto& agent : e.agents()) {
              for (const auto& entry :
                   agent->host().routing_table().learned_routes()) {
                total += entry.metrics.initcwnd_segments;
              }
            }
            samples->push_back(
                RouteSample{e.simulator().now().to_seconds(), total});
          });
    };
  }

  const runner::ParallelRunner pool(opt.base.threads);
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = pool.run(std::move(specs));
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  constexpr std::uint64_t kProbeBytes = 50'000;
  const std::size_t runs_per_scenario = opt.base.seeds.size() * 2;

  std::printf("fault matrix: %zu scenario(s) x %zu seed(s) x "
              "{treatment, control}, %zu PoPs, %.0f s simulated, "
              "%llu-byte probes\n",
              matrix.size(), opt.base.seeds.size(), base.pop_specs.size(),
              opt.duration_s, static_cast<unsigned long long>(kProbeBytes));
  bench::print_rule();
  std::printf("%-14s %-10s %8s %8s %8s %7s %9s %8s %9s %7s %7s %6s %6s\n",
              "scenario", "arm", "p50", "p90", "p99", "n", "retrans",
              "timeouts", "linkdown", "actfail", "retries", "dead",
              "stale");

  for (std::size_t s = 0; s < matrix.size(); ++s) {
    // Appended scenarios report the durable-state counter block; legacy
    // scenarios keep their historical output bytes.
    const bool extended =
        static_cast<bool>(matrix[s].knobs) || matrix[s].crash_s >= 0.0;
    for (int arm = 0; arm < 2; ++arm) {
      const bool is_treatment = arm == 0;
      std::vector<const cdn::Experiment*> runs;
      std::uint64_t retrans = 0, timeouts = 0;
      cdn::Topology::DropTotals drops;
      core::AgentStats agents;
      persist::CheckpointerStats persist_totals;
      faults::FaultInjectorStats injector_totals;
      double recovery_sum = 0.0;
      std::size_t recovery_runs = 0, recovered = 0;
      for (std::size_t seed = 0; seed < opt.base.seeds.size(); ++seed) {
        const std::size_t index =
            s * runs_per_scenario + seed * 2 + static_cast<std::size_t>(arm);
        const cdn::Experiment& e = *results[index].experiment;
        runs.push_back(&e);
        retrans += e.topology().total_retransmissions();
        timeouts += e.topology().total_timeouts();
        const auto d = e.topology().drop_totals();
        drops.queue_full += d.queue_full;
        drops.random_loss += d.random_loss;
        drops.link_down += d.link_down;
        drops.no_route += d.no_route;
        const auto a = agent_totals(e);
        agents.polls_failed += a.polls_failed;
        agents.actuator_failures += a.actuator_failures;
        agents.actuator_retries += a.actuator_retries;
        agents.actuator_dead_letters += a.actuator_dead_letters;
        agents.staleness_decays += a.staleness_decays;
        agents.staleness_withdrawals += a.staleness_withdrawals;
        agents.crashes += a.crashes;
        agents.restarts += a.restarts;
        if (!extended) continue;
        agents.reconcile_repaired += a.reconcile_repaired;
        agents.reconcile_orphaned += a.reconcile_orphaned;
        agents.reconcile_conflicting += a.reconcile_conflicting;
        agents.governor_budget_scaledowns += a.governor_budget_scaledowns;
        agents.governor_hysteresis_skips += a.governor_hysteresis_skips;
        agents.governor_rollbacks += a.governor_rollbacks;
        agents.governor_routes_rolled_back += a.governor_routes_rolled_back;
        agents.governor_cooldown_polls += a.governor_cooldown_polls;
        if (const auto* harness = faults::FaultHarness::from(e)) {
          const auto p = harness->checkpointer_totals();
          persist_totals.checkpoints_written += p.checkpoints_written;
          persist_totals.restores += p.restores;
          persist_totals.snapshots_rejected += p.snapshots_rejected;
          persist_totals.records_recovered += p.records_recovered;
          persist_totals.records_discarded += p.records_discarded;
          const auto& inj = harness->injector().stats();
          injector_totals.routes_flushed += inj.routes_flushed;
          injector_totals.snapshots_corrupted += inj.snapshots_corrupted;
          injector_totals.routes_dropped += inj.routes_dropped;
          injector_totals.routes_mangled += inj.routes_mangled;
        }
        if (is_treatment && matrix[s].crash_s >= 0.0) {
          const double r = recovery_seconds(*series[index], matrix[s].crash_s,
                                            matrix[s].restart_s);
          ++recovery_runs;
          if (r >= 0.0) {
            recovery_sum += r;
            ++recovered;
          }
        }
      }
      const stats::Cdf cdf = merged_cdf(runs, kProbeBytes);
      const char* arm_name = is_treatment ? "treatment" : "control";
      if (cdf.empty()) {
        std::printf("%-14s %-10s  (no samples)\n", matrix[s].name.c_str(),
                    arm_name);
        continue;
      }
      std::printf("%-14s %-10s %8.1f %8.1f %8.1f %7zu %9llu %8llu %9llu "
                  "%7llu %7llu %6llu %6llu\n",
                  matrix[s].name.c_str(), arm_name, cdf.percentile(50),
                  cdf.percentile(90), cdf.percentile(99), cdf.count(),
                  static_cast<unsigned long long>(retrans),
                  static_cast<unsigned long long>(timeouts),
                  static_cast<unsigned long long>(drops.link_down),
                  static_cast<unsigned long long>(agents.actuator_failures),
                  static_cast<unsigned long long>(agents.actuator_retries),
                  static_cast<unsigned long long>(agents.actuator_dead_letters),
                  static_cast<unsigned long long>(
                      agents.staleness_decays + agents.staleness_withdrawals));
      if (opt.base.json) {
        std::printf(
            "{\"bench\":\"fault_matrix\",\"scenario\":\"%s\",\"arm\":\"%s\","
            "\"p50_ms\":%.3f,\"p90_ms\":%.3f,\"p99_ms\":%.3f,\"samples\":%zu,"
            "\"drops\":{\"queue_full\":%llu,\"random_loss\":%llu,"
            "\"link_down\":%llu,\"no_route\":%llu},"
            "\"retransmissions\":%llu,\"timeouts\":%llu,"
            "\"agent\":{\"polls_failed\":%llu,\"actuator_failures\":%llu,"
            "\"actuator_retries\":%llu,\"actuator_dead_letters\":%llu,"
            "\"staleness_decays\":%llu,\"staleness_withdrawals\":%llu,"
            "\"crashes\":%llu,\"restarts\":%llu}}\n",
            matrix[s].name.c_str(), arm_name, cdf.percentile(50),
            cdf.percentile(90), cdf.percentile(99), cdf.count(),
            static_cast<unsigned long long>(drops.queue_full),
            static_cast<unsigned long long>(drops.random_loss),
            static_cast<unsigned long long>(drops.link_down),
            static_cast<unsigned long long>(drops.no_route),
            static_cast<unsigned long long>(retrans),
            static_cast<unsigned long long>(timeouts),
            static_cast<unsigned long long>(agents.polls_failed),
            static_cast<unsigned long long>(agents.actuator_failures),
            static_cast<unsigned long long>(agents.actuator_retries),
            static_cast<unsigned long long>(agents.actuator_dead_letters),
            static_cast<unsigned long long>(agents.staleness_decays),
            static_cast<unsigned long long>(agents.staleness_withdrawals),
            static_cast<unsigned long long>(agents.crashes),
            static_cast<unsigned long long>(agents.restarts));
      }
      if (!extended || !is_treatment) continue;
      // Durable-state addendum, treatment arm only (control has no agents
      // so every counter would read zero). Printed after the legacy row so
      // the first ten scenarios' bytes stay untouched.
      const double recovery_avg =
          recovered > 0 ? recovery_sum / static_cast<double>(recovered) : -1.0;
      if (matrix[s].crash_s >= 0.0) {
        if (recovered > 0) {
          std::printf("%-14s %-10s recovery to 90%% steady: %.1f s after "
                      "restart (%zu/%zu run(s))\n",
                      "", "", recovery_avg, recovered, recovery_runs);
        } else {
          std::printf("%-14s %-10s recovery to 90%% steady: never "
                      "(0/%zu run(s))\n",
                      "", "", recovery_runs);
        }
      }
      std::printf(
          "%-14s %-10s reconcile rep/orph/conf %llu/%llu/%llu | governor "
          "scale/skip/rollback/rolled/cooldown %llu/%llu/%llu/%llu/%llu | "
          "persist ckpt/restore/reject/rec/disc %llu/%llu/%llu/%llu/%llu\n",
          "", "", static_cast<unsigned long long>(agents.reconcile_repaired),
          static_cast<unsigned long long>(agents.reconcile_orphaned),
          static_cast<unsigned long long>(agents.reconcile_conflicting),
          static_cast<unsigned long long>(agents.governor_budget_scaledowns),
          static_cast<unsigned long long>(agents.governor_hysteresis_skips),
          static_cast<unsigned long long>(agents.governor_rollbacks),
          static_cast<unsigned long long>(agents.governor_routes_rolled_back),
          static_cast<unsigned long long>(agents.governor_cooldown_polls),
          static_cast<unsigned long long>(persist_totals.checkpoints_written),
          static_cast<unsigned long long>(persist_totals.restores),
          static_cast<unsigned long long>(persist_totals.snapshots_rejected),
          static_cast<unsigned long long>(persist_totals.records_recovered),
          static_cast<unsigned long long>(persist_totals.records_discarded));
      if (opt.base.json) {
        std::printf(
            "{\"bench\":\"fault_matrix_ext\",\"scenario\":\"%s\","
            "\"arm\":\"%s\",\"recovery_s\":%.3f,\"recovered_runs\":%zu,"
            "\"recovery_runs\":%zu,"
            "\"reconcile\":{\"repaired\":%llu,\"orphaned\":%llu,"
            "\"conflicting\":%llu},"
            "\"governor\":{\"budget_scaledowns\":%llu,"
            "\"hysteresis_skips\":%llu,\"rollbacks\":%llu,"
            "\"routes_rolled_back\":%llu,\"cooldown_polls\":%llu},"
            "\"persist\":{\"checkpoints_written\":%llu,\"restores\":%llu,"
            "\"snapshots_rejected\":%llu,\"records_recovered\":%llu,"
            "\"records_discarded\":%llu},"
            "\"injector\":{\"routes_flushed\":%llu,"
            "\"snapshots_corrupted\":%llu,\"routes_dropped\":%llu,"
            "\"routes_mangled\":%llu}}\n",
            matrix[s].name.c_str(), arm_name, recovery_avg, recovered,
            recovery_runs,
            static_cast<unsigned long long>(agents.reconcile_repaired),
            static_cast<unsigned long long>(agents.reconcile_orphaned),
            static_cast<unsigned long long>(agents.reconcile_conflicting),
            static_cast<unsigned long long>(agents.governor_budget_scaledowns),
            static_cast<unsigned long long>(agents.governor_hysteresis_skips),
            static_cast<unsigned long long>(agents.governor_rollbacks),
            static_cast<unsigned long long>(agents.governor_routes_rolled_back),
            static_cast<unsigned long long>(agents.governor_cooldown_polls),
            static_cast<unsigned long long>(persist_totals.checkpoints_written),
            static_cast<unsigned long long>(persist_totals.restores),
            static_cast<unsigned long long>(persist_totals.snapshots_rejected),
            static_cast<unsigned long long>(persist_totals.records_recovered),
            static_cast<unsigned long long>(persist_totals.records_discarded),
            static_cast<unsigned long long>(injector_totals.routes_flushed),
            static_cast<unsigned long long>(
                injector_totals.snapshots_corrupted),
            static_cast<unsigned long long>(injector_totals.routes_dropped),
            static_cast<unsigned long long>(injector_totals.routes_mangled));
      }
    }
  }

  double sum_run_seconds = 0.0;
  for (const auto& result : results) sum_run_seconds += result.wall_seconds;
  std::printf("sweep: %zu runs on %u worker(s): %.2f s wall, %.2f s summed "
              "run time\n",
              results.size(),
              runner::effective_threads(opt.base.threads, results.size()),
              sweep_seconds, sum_run_seconds);
  if (opt.base.json) {
    perf::Counters perf_totals;
    for (const auto& result : results) perf_totals.accumulate(result.perf);
    std::printf("{\"bench\":\"fault_matrix\",\"runs\":%zu,\"perf\":%s}\n",
                results.size(), perf::to_run_json(perf_totals).c_str());
  }
  return 0;
}

// Reproduces paper Fig 2: the CDF of file sizes on the production CDN.
// The production trace is replaced by the calibrated mixture documented in
// DESIGN.md; the headline statistic the paper quotes — 54% of files larger
// than the ~15 KB that fit in the default initial window — is printed for
// direct comparison.

#include <cstdio>

#include "cdn/file_size_dist.h"
#include "sim/random.h"
#include "stats/cdf.h"
#include "bench_util.h"

int main() {
  using namespace riptide;

  cdn::FileSizeDistribution dist;
  sim::Rng rng(2016);
  stats::Cdf sampled;
  const int n = 1'000'000;
  for (int i = 0; i < n; ++i) {
    sampled.add(static_cast<double>(dist.sample(rng)));
  }

  std::printf("Fig 2: file size distribution of the (synthetic) CDN\n");
  bench::print_rule();
  std::printf("%12s  %14s  %14s\n", "size", "CDF (sampled)", "CDF (analytic)");
  for (double b : {1e3, 5e3, 1e4, 1.46e4, 5e4, 1e5, 2.5e5, 1e6, 1e7}) {
    std::printf("%10.0fKB  %14.3f  %14.3f\n", b / 1000.0,
                sampled.fraction_at_or_below(b), dist.cdf(b));
  }
  bench::print_rule();
  std::printf("fraction of files > 15 KB (paper: 0.54): %.3f sampled, "
              "%.3f analytic\n",
              1.0 - sampled.fraction_at_or_below(15'000.0),
              dist.fraction_above(15'000.0));
  std::printf("fraction of files > 1 MB (paper: small tail): %.3f\n",
              dist.fraction_above(1e6));
  std::printf("median size: %.0f B   p90: %.0f B   p99: %.0f B\n",
              sampled.percentile(50), sampled.percentile(90),
              sampled.percentile(99));
  return 0;
}

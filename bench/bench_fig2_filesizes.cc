// Reproduces paper Fig 2: the CDF of file sizes on the production CDN.
// The production trace is replaced by the calibrated mixture documented in
// DESIGN.md; the headline statistic the paper quotes — 54% of files larger
// than the ~15 KB that fit in the default initial window — is printed for
// direct comparison.

#include <cstddef>
#include <cstdio>
#include <vector>

#include "cdn/file_size_dist.h"
#include "runner/task_pool.h"
#include "sim/random.h"
#include "stats/cdf.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace riptide;
  const auto opt = bench::parse_bench_options(argc, argv);

  // Sampling fans across a fixed number of shards with per-shard RNG
  // streams, so the output is identical for every --threads value.
  cdn::FileSizeDistribution dist;
  constexpr std::size_t kShards = 16;
  constexpr int kPerShard = 1'000'000 / kShards;
  const auto shards = runner::parallel_map<std::vector<double>>(
      opt.threads, kShards, [&dist](std::size_t shard) {
        sim::Rng rng(2016 + static_cast<std::uint64_t>(shard));
        std::vector<double> samples;
        samples.reserve(kPerShard);
        for (int i = 0; i < kPerShard; ++i) {
          samples.push_back(static_cast<double>(dist.sample(rng)));
        }
        return samples;
      });
  stats::Cdf sampled;
  for (const auto& shard : shards) sampled.add_all(shard);

  std::printf("Fig 2: file size distribution of the (synthetic) CDN\n");
  bench::print_rule();
  std::printf("%12s  %14s  %14s\n", "size", "CDF (sampled)", "CDF (analytic)");
  for (double b : {1e3, 5e3, 1e4, 1.46e4, 5e4, 1e5, 2.5e5, 1e6, 1e7}) {
    std::printf("%10.0fKB  %14.3f  %14.3f\n", b / 1000.0,
                sampled.fraction_at_or_below(b), dist.cdf(b));
  }
  bench::print_rule();
  std::printf("fraction of files > 15 KB (paper: 0.54): %.3f sampled, "
              "%.3f analytic\n",
              1.0 - sampled.fraction_at_or_below(15'000.0),
              dist.fraction_above(15'000.0));
  std::printf("fraction of files > 1 MB (paper: small tail): %.3f\n",
              dist.fraction_above(1e6));
  std::printf("median size: %.0f B   p90: %.0f B   p99: %.0f B\n",
              sampled.percentile(50), sampled.percentile(90),
              sampled.percentile(99));
  return 0;
}

#pragma once

// Packet-rate driver behind bench_micro's --hotpath-json mode. Two
// workloads, both full TCP over simulated links, and one machine-readable
// JSON line so successive PRs can track the segment hot path:
//
//   bulk     - N concurrent bulk transfers over a fast lossy link; the
//              steady-state data/ACK/SACK churn that dominates experiment
//              wall-clock. Reports segments per wall-clock second.
//   fig6     - repeated fresh-connection 100 KB transfers (the paper's
//              Fig. 6 transfer-time workload). Reports per-transfer
//              segment heap allocations, the number the pooled-segment
//              refactor is accountable to.
//
// Only public Host/Link/TcpConnection APIs are used, so the same driver
// links against either segment-allocation strategy — numbers are
// apples-to-apples across PRs.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>

#include "host/host.h"
#include "net/link.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "stats/perf.h"
#include "tcp/config.h"
#include "tcp/connection.h"

namespace riptide::bench {

struct HotpathResult {
  // bulk workload
  double bulk_wall_seconds = 0.0;
  double segments_per_sec = 0.0;  // segments built per wall-clock second
  double events_per_sec = 0.0;
  perf::Counters bulk;  // counter deltas for the bulk run
  // fig6 workload
  std::uint64_t fig6_transfers = 0;
  double fig6_allocs_per_transfer = 0.0;  // segment heap allocs / transfer
  perf::Counters fig6;  // counter deltas for the fig6 run
};

namespace hotpath_detail {

inline double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace hotpath_detail

// N concurrent bulk transfers across a shared 10 Gb/s, 5 ms link with
// 0.2% random loss: loss keeps the SACK scoreboard and retransmission
// machinery live, so the bench covers the allocation-heavy paths (data,
// ACK, SACK-carrying ACK, retransmit) rather than only the happy path.
//
// One untimed warm-up pass runs first and the reported wall is the best
// of `reps` timed passes: the first pass through a freshly exec'd binary
// pays demand paging and branch-training costs that can double its wall
// time, and best-of-N over a warmed process is the stable steady-state
// number. Counter deltas are taken over the timed passes and divided by
// `reps` (the workload is deterministic, so per-pass counts are exact).
inline void run_hotpath_bulk_once(int connections,
                                  std::uint64_t bytes_per_connection) {
  sim::Simulator sim;
  sim::Rng rng(7);
  tcp::TcpConfig config;
  config.sack = true;
  host::Host a(sim, "a", net::Ipv4Address(10, 0, 0, 1), config);
  host::Host b(sim, "b", net::Ipv4Address(10, 0, 0, 2), config);
  net::Link ab(sim, {1e10, sim::Time::milliseconds(5), 4096, 0.002, "ab"}, b,
               &rng);
  net::Link ba(sim, {1e10, sim::Time::milliseconds(5), 4096, 0.002, "ba"}, a,
               &rng);
  a.attach_uplink(ab);
  b.attach_uplink(ba);
  b.listen(80, [](tcp::TcpConnection&) {});

  for (int i = 0; i < connections; ++i) {
    auto& conn = a.connect(b.address(), 80, {});
    conn.send(bytes_per_connection);
    conn.close();
  }
  sim.run();
}

inline void run_hotpath_bulk(HotpathResult& out, int connections = 32,
                             std::uint64_t bytes_per_connection = 4'000'000,
                             int reps = 3) {
  run_hotpath_bulk_once(connections, bytes_per_connection);  // warm-up

  const perf::Counters before = perf::local();
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double start = hotpath_detail::now_seconds();
    run_hotpath_bulk_once(connections, bytes_per_connection);
    const double wall = hotpath_detail::now_seconds() - start;
    if (r == 0 || wall < best) best = wall;
  }
  out.bulk_wall_seconds = best;
  out.bulk = perf::local().delta_since(before);
  out.bulk.segments_allocated /= static_cast<std::uint64_t>(reps);
  out.bulk.segments_recycled /= static_cast<std::uint64_t>(reps);
  out.bulk.segment_heap_allocs /= static_cast<std::uint64_t>(reps);
  out.bulk.sack_heap_spills /= static_cast<std::uint64_t>(reps);
  out.bulk.events_dispatched /= static_cast<std::uint64_t>(reps);
  out.bulk.events_cascaded /= static_cast<std::uint64_t>(reps);
  out.bulk.overflow_promotions /= static_cast<std::uint64_t>(reps);
  out.bulk.timer_buckets_dispatched /= static_cast<std::uint64_t>(reps);
  out.bulk.packets_queued /= static_cast<std::uint64_t>(reps);
  out.bulk.bytes_queued /= static_cast<std::uint64_t>(reps);
  out.segments_per_sec =
      static_cast<double>(out.bulk.segments_allocated) / out.bulk_wall_seconds;
  out.events_per_sec =
      static_cast<double>(out.bulk.events_dispatched) / out.bulk_wall_seconds;
}

// The Fig. 6 shape: a fresh connection per transfer, 100 KB each, over a
// WAN-ish 50 ms path. What matters here is not wall-clock but how many
// heap allocations one transfer costs.
inline void run_hotpath_fig6(HotpathResult& out, int transfers = 200,
                             std::uint64_t transfer_bytes = 100'000) {
  sim::Simulator sim;
  sim::Rng rng(11);
  tcp::TcpConfig config;
  config.sack = true;
  host::Host a(sim, "a", net::Ipv4Address(10, 1, 0, 1), config);
  host::Host b(sim, "b", net::Ipv4Address(10, 1, 0, 2), config);
  net::Link ab(sim, {1e9, sim::Time::milliseconds(50), 2048, 0.001, "ab"}, b,
               &rng);
  net::Link ba(sim, {1e9, sim::Time::milliseconds(50), 2048, 0.001, "ba"}, a,
               &rng);
  a.attach_uplink(ab);
  b.attach_uplink(ba);
  b.listen(80, [](tcp::TcpConnection&) {});

  const perf::Counters before = perf::local();
  for (int i = 0; i < transfers; ++i) {
    auto& conn = a.connect(b.address(), 80, {});
    conn.send(transfer_bytes);
    conn.close();
    sim.run();  // drain this transfer (and its teardown) completely
  }
  out.fig6 = perf::local().delta_since(before);
  out.fig6_transfers = static_cast<std::uint64_t>(transfers);
  out.fig6_allocs_per_transfer =
      static_cast<double>(out.fig6.segment_heap_allocs) / transfers;
}

inline HotpathResult measure_hotpath() {
  HotpathResult out;
  run_hotpath_bulk(out);
  run_hotpath_fig6(out);
  return out;
}

inline void print_hotpath_json(const HotpathResult& r,
                               const char* build_label) {
  std::printf(
      "{\"bench\":\"hotpath\",\"build\":\"%s\","
      "\"segments_per_sec\":%.0f,"
      "\"events_per_sec\":%.0f,"
      "\"bulk_wall_seconds\":%.4f,"
      "\"fig6_transfers\":%llu,"
      "\"fig6_allocs_per_transfer\":%.2f,"
      "\"bulk_counters\":%s,"
      "\"fig6_counters\":%s}\n",
      build_label, r.segments_per_sec, r.events_per_sec, r.bulk_wall_seconds,
      static_cast<unsigned long long>(r.fig6_transfers),
      r.fig6_allocs_per_transfer, perf::to_json(r.bulk).c_str(),
      perf::to_json(r.fig6).c_str());
}

}  // namespace riptide::bench

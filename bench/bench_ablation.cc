// Ablation study over the design choices DESIGN.md calls out (§III-B of
// the paper): the combination algorithm (average / max / traffic-weighted),
// the EWMA history weight alpha, and the route granularity (/32 host
// routes vs per-PoP /16 prefix routes).
//
// Reported for each variant: the live-window median, the fresh 100 KB
// probe completion median from 'lon', and the number of routes programmed
// (the overhead knob that prefix granularity is meant to shrink).

#include <cstdio>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "runner/parallel_runner.h"
#include "bench_util.h"

using namespace riptide;

namespace {

struct Variant {
  std::string name;
  cdn::ExperimentConfig config;
};

void report(const std::string& name, const cdn::Experiment& exp) {
  const int src = bench::find_pop(exp.config().pop_specs, "lon");
  const auto cwnd = exp.metrics().cwnd_cdf();
  const auto probes = exp.probe_cdf(src, 100'000, -1, /*fresh_only=*/true);

  // Learned-table entries (== installed routes) per agent: the route-state
  // overhead knob that prefix granularity shrinks.
  std::size_t table_entries = 0;
  for (const auto& agent : exp.agents()) {
    table_entries += agent->table().size();
  }
  const double per_agent =
      exp.agents().empty()
          ? 0.0
          : static_cast<double>(table_entries) /
                static_cast<double>(exp.agents().size());
  std::printf("%-30s  %12.0f  %16.0f  %14.1f\n", name.c_str(),
              cwnd.empty() ? 0.0 : cwnd.percentile(50),
              probes.empty() ? 0.0 : probes.percentile(50), per_agent);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);
  std::printf("Ablation: Riptide design variants (3 min simulated runs)\n");
  bench::print_rule();
  std::printf("%-30s  %12s  %16s  %14s\n", "variant", "cwnd p50",
              "100K probe p50ms", "routes/agent");
  bench::print_rule();

  std::vector<Variant> variants;

  {
    Variant v{"no riptide (control)", bench::paper_world(false)};
    variants.push_back(v);
  }
  {
    Variant v{"average (paper default)", bench::paper_world(true)};
    variants.push_back(v);
  }
  {
    Variant v{"max combiner", bench::paper_world(true)};
    v.config.riptide.combiner = core::CombinerKind::kMax;
    variants.push_back(v);
  }
  {
    Variant v{"traffic-weighted", bench::paper_world(true)};
    v.config.riptide.combiner = core::CombinerKind::kTrafficWeighted;
    variants.push_back(v);
  }
  for (double alpha : {0.0, 0.25, 0.75, 0.9}) {
    Variant v{"alpha=" + std::to_string(alpha).substr(0, 4),
              bench::paper_world(true)};
    v.config.riptide.alpha = alpha;
    variants.push_back(v);
  }
  {
    // Route-count reduction only shows when one host talks to *several*
    // hosts of a remote PoP (see examples/prefix_granularity for that
    // demonstration); in this mesh each host probes one host per PoP, so
    // this row checks performance parity of the coarser grouping.
    Variant v{"granularity /16 (per-PoP)", bench::paper_world(true)};
    v.config.riptide.granularity = core::Granularity::kPrefix;
    v.config.riptide.prefix_length = 16;
    variants.push_back(v);
  }
  {
    Variant v{"no initrwnd raise", bench::paper_world(true)};
    v.config.riptide.set_initrwnd = false;
    variants.push_back(v);
  }
  {
    // Burst mitigation for large initial windows (§II-B's congestion-risk
    // caveat): pace every host's sends at 2x cwnd/srtt.
    Variant v{"pacing enabled", bench::paper_world(true)};
    v.config.topology.host_tcp.pacing = true;
    variants.push_back(v);
  }
  {
    Variant v{"SACK enabled", bench::paper_world(true)};
    v.config.topology.host_tcp.sack = true;
    variants.push_back(v);
  }
  {
    Variant v{"NewReno instead of Cubic", bench::paper_world(true)};
    v.config.topology.host_tcp.congestion_control =
        tcp::CcAlgorithm::kNewReno;
    variants.push_back(v);
  }

  // All variants are independent: fan them across the worker pool and
  // report in declaration order.
  std::vector<runner::RunSpec> specs;
  specs.reserve(variants.size());
  for (auto& variant : variants) {
    specs.push_back(
        runner::RunSpec{std::move(variant.name), std::move(variant.config),
                        nullptr});
  }
  for (const auto& result :
       runner::ParallelRunner(opt.threads).run(std::move(specs))) {
    report(result.label, *result.experiment);
  }

  bench::print_rule();
  std::printf("expected: combiners converge to similar steady windows on "
              "this saturating workload (max ramps fastest); high alpha "
              "slows the ramp;\n/16 granularity holds one route per remote "
              "PoP instead of one per remote host; without the initrwnd "
              "raise (section III-C)\nlarge initcwnds are flow-control "
              "capped and probe gains shrink\n");
  return 0;
}

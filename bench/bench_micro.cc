// Microbenchmarks (google-benchmark) for the hot paths of the simulator
// and the Riptide agent: event-queue throughput, longest-prefix-match
// lookups, the agent's poll loop against a host with many connections, and
// quantile extraction used by the analysis pipeline.
//
// `bench_micro --queue-json` skips google-benchmark and instead runs the
// event-queue throughput driver (schedule/fire, schedule/cancel,
// RTO-rearm, multi-timer rearm churn, far-future overflow) and prints one
// machine-readable JSON row per workload, so successive PRs can track the
// event-loop trajectory. See queue_throughput.h.

#include <benchmark/benchmark.h>

#include <cstring>

#include "core/agent.h"
#include "host/routing_table.h"
#include "model/transfer_model.h"
#include "net/link.h"
#include "net/router.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "stats/cdf.h"
#include "stats/ewma.h"
#include "tcp/connection.h"
#include "hotpath.h"
#include "queue_throughput.h"

namespace {

using namespace riptide;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sum = 0;
    for (int i = 0; i < events; ++i) {
      sim.schedule(sim::Time::microseconds(i % 1000), [&sum] { ++sum; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(100000);

// Events scheduled then cancelled before firing: delayed-ACK / pacing
// timer churn. Exercises handle issue + generation-bump cancellation.
void BM_SimulatorScheduleCancel(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  std::vector<sim::EventHandle> handles(
      static_cast<std::size_t>(events));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < events; ++i) {
      handles[static_cast<std::size_t>(i)] =
          sim.schedule(sim::Time::microseconds(i % 1000 + 1), [] {});
    }
    for (auto& h : handles) h.cancel();
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleCancel)->Arg(1000)->Arg(100000);

// The RTO pattern: one timer rearmed per ACK while live short-delay events
// keep the queue head busy. Under the timer wheel each rearm is an O(1)
// unlink + O(1) re-insert; the old heap let the cancelled entries pile up
// deep in the queue until compaction reclaimed them.
void BM_SimulatorRtoRearm(benchmark::State& state) {
  const int acks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::EventHandle rto;
    std::uint64_t fired = 0;
    for (int i = 0; i < acks; ++i) {
      rto.cancel();
      rto = sim.schedule(sim::Time::milliseconds(200), [&fired] { ++fired; });
      sim.schedule(sim::Time::microseconds(100), [&fired] { ++fired; });
      if (i % 64 == 0) {
        sim.run_until(sim.now() + sim::Time::microseconds(10));
      }
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * acks);
}
BENCHMARK(BM_SimulatorRtoRearm)->Arg(100000);

// Periodic timers: slot reuse across firings (no realloc, no rescheduling
// lambda chain).
void BM_SimulatorPeriodic(benchmark::State& state) {
  const int timers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fires = 0;
    for (int i = 0; i < timers; ++i) {
      sim.schedule_periodic(sim::Time::microseconds(i % 100),
                            sim::Time::milliseconds(1),
                            [&fires] { ++fires; });
    }
    sim.run_until(sim::Time::milliseconds(100));
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() * timers * 100);
}
BENCHMARK(BM_SimulatorPeriodic)->Arg(100);

void BM_RoutingTableLookup(benchmark::State& state) {
  const int routes = static_cast<int>(state.range(0));
  host::RoutingTable table;
  net::Router sink("sink");
  for (int i = 0; i < routes; ++i) {
    table.add_or_replace(
        net::Prefix(net::Ipv4Address(10, static_cast<std::uint8_t>(i % 200),
                                     static_cast<std::uint8_t>(i / 200), 0),
                    24),
        sink, host::RouteMetrics{50, 100});
  }
  table.add_or_replace(net::Prefix(net::Ipv4Address(0), 0), sink);
  std::uint32_t x = 1;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(table.lookup(net::Ipv4Address(x)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingTableLookup)->Arg(16)->Arg(256)->Arg(2048);

void BM_EwmaUpdate(benchmark::State& state) {
  stats::Ewma ewma(0.5);
  double v = 10.0;
  for (auto _ : state) {
    v = v * 1.01;
    if (v > 100) v = 10;
    benchmark::DoNotOptimize(ewma.update(v));
  }
}
BENCHMARK(BM_EwmaUpdate);

void BM_CdfQuantile(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    stats::Cdf cdf;
    for (int i = 0; i < n; ++i) cdf.add(rng.uniform(0, 1000));
    state.ResumeTiming();
    benchmark::DoNotOptimize(cdf.percentile(50));
    benchmark::DoNotOptimize(cdf.percentile(99));
  }
}
BENCHMARK(BM_CdfQuantile)->Arg(1000)->Arg(100000);

void BM_TransferModel(benchmark::State& state) {
  std::uint64_t size = 1000;
  for (auto _ : state) {
    size = (size * 7919) % 10'000'000 + 100;
    benchmark::DoNotOptimize(
        model::rtts_for_transfer(size, model::ModelParams{1460, 10}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransferModel);

// The agent's full Algorithm-1 iteration against a host carrying many
// established connections — the per-i_u cost the paper's §V "Overhead"
// discusses.
void BM_AgentPoll(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));

  sim::Simulator sim;
  host::Host a(sim, "a", net::Ipv4Address(10, 0, 0, 1));
  host::Host b(sim, "b", net::Ipv4Address(10, 0, 1, 1));
  sim::Rng rng(1);
  net::Link ab(sim, {1e10, sim::Time::microseconds(100), 1 << 16, 0, "ab"}, b,
               &rng);
  net::Link ba(sim, {1e10, sim::Time::microseconds(100), 1 << 16, 0, "ba"}, a,
               &rng);
  a.attach_uplink(ab);
  b.attach_uplink(ba);
  b.listen(80, [](tcp::TcpConnection&) {});
  for (int i = 0; i < conns; ++i) {
    a.connect(b.address(), 80, {});
  }
  sim.run_until(sim::Time::seconds(2));

  core::RiptideConfig config;
  core::RiptideAgent agent(sim, a, config);
  for (auto _ : state) {
    agent.poll_once();
  }
  state.SetItemsProcessed(state.iterations() * conns);
}
BENCHMARK(BM_AgentPoll)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
#ifdef __OPTIMIZE__
  const char* build = "optimized";
#else
  const char* build = "unoptimized";
#endif
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--queue-json") == 0) {
      riptide::bench::print_queue_throughput_json(
          riptide::bench::measure_queue_throughput(), build);
      return 0;
    }
    if (std::strcmp(argv[i], "--hotpath-json") == 0) {
      riptide::bench::print_hotpath_json(riptide::bench::measure_hotpath(),
                                         build);
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Reproduces paper Figs 15 and 16 and the §IV-D edge-case analysis:
// the fraction of completion-time improvement by percentile (5% steps),
// averaged across destinations, for 50 KB (Fig 15) and 100 KB (Fig 16)
// probes from a European (lon) and a North American (nyc) PoP; plus the
// per-destination minimum and maximum (best/worst case) deltas.
//
// Paper shape: little change below the ~50th percentile, gains of ~20-30%
// in the upper percentiles, and near-zero change in the min/max edge
// cases.
//
// Runs as a treatment/control sweep over --seeds (default one seed) fanned
// across --threads workers; per-destination CDFs are merged across seeds
// before the percentile comparison, which tightens the distributional
// claim the same way the paper's 12-hour window does.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "runner/parallel_runner.h"
#include "stats/perf.h"
#include "runner/sweep.h"
#include "runner/task_pool.h"
#include "bench_util.h"

using namespace riptide;

namespace {

// Merged completion-time CDF across all seeds of one sweep arm.
stats::Cdf merged_cdf(const std::vector<const cdn::Experiment*>& runs,
                      int src, std::uint64_t size, int dst) {
  stats::Cdf merged;
  for (const cdn::Experiment* run : runs) {
    merged.add_all(run->probe_cdf(src, size, dst).sorted_samples());
  }
  return merged;
}

// Average the per-destination percentile gains, as the paper does.
void print_gain_by_percentile(
    const std::vector<const cdn::Experiment*>& treatment,
    const std::vector<const cdn::Experiment*>& control, int src,
    std::uint64_t size, std::size_t pop_count) {
  std::map<double, std::pair<double, int>> accum;  // pct -> (sum, n)
  for (std::size_t dst = 0; dst < pop_count; ++dst) {
    if (static_cast<int>(dst) == src) continue;
    // All probes of this size (the paper's view): reused probes run at
    // grown windows in both systems and pin the low percentiles; fresh
    // ones carry the gains.
    const auto with = merged_cdf(treatment, src, size, static_cast<int>(dst));
    const auto without = merged_cdf(control, src, size, static_cast<int>(dst));
    if (with.count() < 10 || without.count() < 10) continue;
    for (const auto& gain : cdn::percentile_gains(without, with, 5.0)) {
      auto& slot = accum[gain.percentile];
      slot.first += gain.gain_fraction;
      ++slot.second;
    }
  }
  std::printf("%-12s", "percentile:");
  for (const auto& [pct, _] : accum) std::printf(" %5.0f", pct);
  std::printf("\n%-12s", "gain %:");
  for (const auto& [_, slot] : accum) {
    std::printf(" %5.1f", slot.second > 0 ? 100.0 * slot.first / slot.second
                                          : 0.0);
  }
  std::printf("\n");
}

// §IV-D: distribution of the per-destination change in the minimum (best
// case) and maximum (worst case) completion times.
void print_edge_cases(const std::vector<const cdn::Experiment*>& treatment,
                      const std::vector<const cdn::Experiment*>& control,
                      int src, std::uint64_t size, std::size_t pop_count) {
  int min_within_5 = 0, max_within_6 = 0, destinations = 0;
  for (std::size_t dst = 0; dst < pop_count; ++dst) {
    if (static_cast<int>(dst) == src) continue;
    const auto with = merged_cdf(treatment, src, size, static_cast<int>(dst));
    const auto without = merged_cdf(control, src, size, static_cast<int>(dst));
    if (with.count() < 10 || without.count() < 10) continue;
    ++destinations;
    const double min_delta = (without.min() - with.min()) / without.min();
    const double max_delta = (without.max() - with.max()) / without.max();
    if (std::abs(min_delta) <= 0.05) ++min_within_5;
    if (std::abs(max_delta) <= 0.06) ++max_within_6;
  }
  if (destinations == 0) return;
  std::printf("edge cases over %d destinations: min-case within +-5%% for "
              "%.0f%% (paper: 75-100%%), max-case within +-6%% for %.0f%% "
              "(paper: ~50%%, high variance)\n",
              destinations, 100.0 * min_within_5 / destinations,
              100.0 * max_within_6 / destinations);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_bench_options(argc, argv);

  auto base = bench::paper_world(/*riptide=*/true);
  base.duration = sim::Time::minutes(4);
  bench::apply_trace(base, opt);

  auto specs = runner::SweepSpec(base)
                   .seeds(opt.seeds)
                   .treatment_control()
                   .materialize();

  const runner::ParallelRunner pool(opt.threads);
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = pool.run(std::move(specs));
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  // Expansion order is seed-major with treatment before control.
  std::vector<const cdn::Experiment*> treatment, control;
  double sum_run_seconds = 0.0;
  for (const auto& result : results) {
    sum_run_seconds += result.wall_seconds;
    (result.index % 2 == 0 ? treatment : control)
        .push_back(result.experiment.get());
  }

  const std::size_t pops = treatment.front()->topology().pop_count();
  const int eu = bench::find_pop(base.pop_specs, "lon");
  const int na = bench::find_pop(base.pop_specs, "nyc");

  int fig = 15;
  for (std::uint64_t size : {50'000u, 100'000u}) {
    std::printf("Fig %d: fraction of gain by percentile, %llu KB probes "
                "(averaged across destinations, %zu seed(s))\n",
                fig++, static_cast<unsigned long long>(size / 1000),
                opt.seeds.size());
    bench::print_rule();
    std::printf("(a) European PoP (lon):\n");
    print_gain_by_percentile(treatment, control, eu, size, pops);
    std::printf("(b) North American PoP (nyc):\n");
    print_gain_by_percentile(treatment, control, na, size, pops);
    if (size == 100'000u) {
      std::printf("\nSection IV-D edge cases (100 KB):\n");
      print_edge_cases(treatment, control, eu, size, pops);
      print_edge_cases(treatment, control, na, size, pops);
    }
    std::printf("\n");
  }
  std::printf("expected shape: flat/no change at low percentiles, gains "
              "concentrated ~50th-95th (paper: up to ~30%% / ~21%% for 50 KB,"
              " up to ~25%% for 100 KB)\n");
  std::printf("sweep: %zu runs on %u worker(s): %.2f s wall, %.2f s summed "
              "run time\n",
              results.size(),
              runner::effective_threads(opt.threads, results.size()),
              sweep_seconds, sum_run_seconds);
  if (opt.json) {
    // One line per run (arm + seed) so drop/safety counters stay
    // attributable, then the sweep summary line.
    for (const auto& result : results) {
      std::printf("{\"bench\":\"fig15_16\",\"run\":\"%s\",%s,\"perf\":%s}\n",
                  result.label.c_str(),
                  bench::safety_counters_json(*result.experiment).c_str(),
                  perf::to_run_json(result.perf).c_str());
    }
    std::printf("{\"bench\":\"fig15_16\",\"runs\":%zu,\"threads\":%u,"
                "\"wall_seconds\":%.3f,\"sum_run_seconds\":%.3f}\n",
                results.size(),
                runner::effective_threads(opt.threads, results.size()),
                sweep_seconds, sum_run_seconds);
  }
  return 0;
}

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "stats/cdf.h"

namespace riptide::bench {

// Prints a CDF as "value @ percentile" rows at the given percentiles.
inline void print_cdf_row(const std::string& label, const stats::Cdf& cdf,
                          const std::vector<double>& percentiles) {
  std::printf("%-28s", label.c_str());
  if (cdf.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  for (double p : percentiles) {
    std::printf("  %9.1f", cdf.percentile(p));
  }
  std::printf("  (n=%zu)\n", cdf.count());
}

inline void print_percentile_header(const std::string& first_col,
                                    const std::vector<double>& percentiles) {
  std::printf("%-28s", first_col.c_str());
  for (double p : percentiles) {
    std::printf("  %8.0fth", p);
  }
  std::printf("\n");
}

inline void print_rule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

// The standard scaled-down experiment world shared by the simulation
// benches: the paper's full 34-PoP roster, one host per PoP, and a probe
// mesh at seconds (rather than hourly) cadence. The measurement window is
// minutes of simulated time instead of the paper's 12-20 hours; all of the
// measured quantities are distributional, so the window only controls
// sample count.
inline cdn::ExperimentConfig paper_world(bool riptide_enabled,
                                         std::uint64_t seed = 1) {
  cdn::ExperimentConfig config;
  config.topology.hosts_per_pop = 1;
  // Cross-traffic-induced residual loss on WAN segments, calibrated so
  // congestion bounds natural window growth the way the paper's production
  // network does (this is what produces Fig 10's diminishing returns past
  // c_max = 100).
  config.topology.wan_loss_probability = 1e-3;
  config.riptide_enabled = riptide_enabled;
  config.riptide.update_interval = sim::Time::seconds(1);  // i_u of §IV-A
  config.riptide.ttl = sim::Time::seconds(90);             // t of §III-B
  config.riptide.c_max = 100;                              // Fig 10 knee
  config.probe.interval = sim::Time::seconds(5);
  config.probe.idle_close = sim::Time::seconds(12);
  // CDN-standard host tuning: keep grown windows across idle periods
  // (tcp_slow_start_after_idle=0), so reused probe connections run at
  // their grown windows in both the control and the treatment — the
  // production behaviour behind the paper's flat low percentiles in
  // Figs 15/16.
  config.topology.host_tcp.slow_start_after_idle = false;
  config.duration = sim::Time::minutes(3);
  config.cwnd_sample_interval = sim::Time::seconds(15);
  config.seed = seed;
  return config;
}

inline int find_pop(const std::vector<cdn::PopSpec>& specs,
                    const std::string& name) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace riptide::bench

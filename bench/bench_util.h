#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "stats/cdf.h"

namespace riptide::bench {

// Options shared by every bench driver. All benches accept:
//   --threads N     worker threads for independent experiment runs
//                   (0/default = one per hardware thread)
//   --seeds a,b,c   seeds to sweep where the bench supports it
//   --json          additionally emit machine-readable result lines
//   --trace PATH    enable decision-audit tracing on simulation benches;
//                   "{label}"/"{index}" in PATH expand per run, so one
//                   flag fans out to per-run JSONL files
struct BenchOptions {
  unsigned threads = 0;
  std::vector<std::uint64_t> seeds = {1};
  bool json = false;
  std::string trace_path;
};

// Benchmark numbers from an -O0 build are noise; say so loudly (satellite
// of the perf PR: benches default to a Release-flags warning).
inline void warn_if_unoptimized() {
#ifndef __OPTIMIZE__
  std::fprintf(stderr,
               "WARNING: this bench was built without optimization "
               "(CMAKE_BUILD_TYPE=Debug?). Numbers will be meaningless; "
               "configure with -DCMAKE_BUILD_TYPE=Release.\n");
#endif
}

inline BenchOptions parse_bench_options(int argc, char** argv) {
  warn_if_unoptimized();
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      opt.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--seeds" && i + 1 < argc) {
      opt.seeds.clear();
      const char* p = argv[++i];
      while (*p != '\0') {
        char* end = nullptr;
        opt.seeds.push_back(std::strtoull(p, &end, 10));
        p = (*end == ',') ? end + 1 : end;
      }
      if (opt.seeds.empty()) opt.seeds = {1};
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      opt.trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--seeds a,b,c] [--json] "
                   "[--trace PATH]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

// Prints a CDF as "value @ percentile" rows at the given percentiles.
inline void print_cdf_row(const std::string& label, const stats::Cdf& cdf,
                          const std::vector<double>& percentiles) {
  std::printf("%-28s", label.c_str());
  if (cdf.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  for (double p : percentiles) {
    std::printf("  %9.1f", cdf.percentile(p));
  }
  std::printf("  (n=%zu)\n", cdf.count());
}

inline void print_percentile_header(const std::string& first_col,
                                    const std::vector<double>& percentiles) {
  std::printf("%-28s", first_col.c_str());
  for (double p : percentiles) {
    std::printf("  %8.0fth", p);
  }
  std::printf("\n");
}

inline void print_rule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

// The standard scaled-down experiment world shared by the simulation
// benches: the paper's full 34-PoP roster, one host per PoP, and a probe
// mesh at seconds (rather than hourly) cadence. The measurement window is
// minutes of simulated time instead of the paper's 12-20 hours; all of the
// measured quantities are distributional, so the window only controls
// sample count.
inline cdn::ExperimentConfig paper_world(bool riptide_enabled,
                                         std::uint64_t seed = 1) {
  cdn::ExperimentConfig config;
  config.topology.hosts_per_pop = 1;
  // Cross-traffic-induced residual loss on WAN segments, calibrated so
  // congestion bounds natural window growth the way the paper's production
  // network does (this is what produces Fig 10's diminishing returns past
  // c_max = 100).
  config.topology.wan_loss_probability = 1e-3;
  config.riptide_enabled = riptide_enabled;
  config.riptide.update_interval = sim::Time::seconds(1);  // i_u of §IV-A
  config.riptide.ttl = sim::Time::seconds(90);             // t of §III-B
  config.riptide.c_max = 100;                              // Fig 10 knee
  config.probe.interval = sim::Time::seconds(5);
  config.probe.idle_close = sim::Time::seconds(12);
  // CDN-standard host tuning: keep grown windows across idle periods
  // (tcp_slow_start_after_idle=0), so reused probe connections run at
  // their grown windows in both the control and the treatment — the
  // production behaviour behind the paper's flat low percentiles in
  // Figs 15/16.
  config.topology.host_tcp.slow_start_after_idle = false;
  config.duration = sim::Time::minutes(3);
  config.cwnd_sample_interval = sim::Time::seconds(15);
  config.seed = seed;
  return config;
}

// Applies the --trace option to a simulation config. No-op without the
// flag, preserving the tracing-off bit-identity contract benches rely on.
inline void apply_trace(cdn::ExperimentConfig& config,
                        const BenchOptions& opt) {
  if (opt.trace_path.empty()) return;
  config.trace.enabled = true;
  config.trace.export_path = opt.trace_path;
}

// Per-reason drop counters and loss-recovery totals for one run, as a JSON
// fragment (key:value pairs, no surrounding braces) — appended to bench
// JSON lines so degraded runs are explainable from the emitted record.
inline std::string safety_counters_json(const cdn::Experiment& e) {
  const auto drops = e.topology().drop_totals();
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "\"drops\":{\"queue_full\":%llu,\"random_loss\":%llu,"
      "\"link_down\":%llu,\"no_route\":%llu},"
      "\"retransmissions\":%llu,\"timeouts\":%llu",
      static_cast<unsigned long long>(drops.queue_full),
      static_cast<unsigned long long>(drops.random_loss),
      static_cast<unsigned long long>(drops.link_down),
      static_cast<unsigned long long>(drops.no_route),
      static_cast<unsigned long long>(e.topology().total_retransmissions()),
      static_cast<unsigned long long>(e.topology().total_timeouts()));
  return buf;
}

inline int find_pop(const std::vector<cdn::PopSpec>& specs,
                    const std::string& name) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace riptide::bench

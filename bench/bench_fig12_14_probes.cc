// Reproduces paper Figs 12, 13 and 14: CDFs of probe completion time for
// 10, 50 and 100 KB probes, grouped by destination RTT bucket (<50 ms,
// 50-100 ms, 100-150 ms, >150 ms), with and without Riptide. Probes are
// issued from a European PoP (lon), as in §IV-B2.
//
// Paper shape: 10 KB probes are unchanged (they already fit in IW10);
// 50 KB probes improve for ~30% of connections; 100 KB probes improve for
// ~78%; improvements are whole-RTT "stair steps" that grow with distance.

#include <cstdio>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "cdn/metrics.h"
#include "runner/parallel_runner.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace riptide;
  const auto opt = bench::parse_bench_options(argc, argv);

  auto treatment_cfg = bench::paper_world(/*riptide=*/true);
  auto control_cfg = bench::paper_world(/*riptide=*/false);
  treatment_cfg.seed = control_cfg.seed = opt.seeds.front();
  const int src = bench::find_pop(treatment_cfg.pop_specs, "lon");

  auto results = runner::ParallelRunner(opt.threads)
                     .run_pair(treatment_cfg, control_cfg);
  const cdn::Experiment& treatment = *results[0].experiment;
  const cdn::Experiment& control = *results[1].experiment;

  const std::vector<double> percentiles = {10, 25, 50, 75, 90};
  const std::vector<cdn::RttBucket> buckets = {
      cdn::RttBucket::kClose, cdn::RttBucket::kMedium, cdn::RttBucket::kFar,
      cdn::RttBucket::kVeryFar};

  int fig = 12;
  for (std::uint64_t size : {10'000u, 50'000u, 100'000u}) {
    // All probes of each size, as in the paper: per round one flavour
    // reuses the pooled connection, the rest open fresh ones.
    const bool fresh_only = false;
    std::printf("Fig %d: completion time CDFs, %llu KB probes from 'lon' "
                "(%s connections, ms)\n",
                fig++, static_cast<unsigned long long>(size / 1000),
                fresh_only ? "fresh" : "all");
    bench::print_rule();
    bench::print_percentile_header("bucket / system", percentiles);
    for (const auto bucket : buckets) {
      auto in_bucket = [&](const cdn::FlowRecord& f, bool fresh) {
        return f.src_pop == src && f.object_bytes == size &&
               cdn::bucket_for(f.base_rtt_ms) == bucket &&
               (!fresh || f.fresh);
      };
      const auto with = treatment.metrics().completion_cdf(
          [&](const cdn::FlowRecord& f) { return in_bucket(f, fresh_only); });
      const auto without = control.metrics().completion_cdf(
          [&](const cdn::FlowRecord& f) { return in_bucket(f, fresh_only); });
      bench::print_cdf_row(std::string(to_string(bucket)) + " riptide", with,
                           percentiles);
      bench::print_cdf_row(std::string(to_string(bucket)) + " default",
                           without, percentiles);
    }

    // Fraction of the distribution Riptide improved (by > 5%), estimated
    // percentile-by-percentile.
    auto all_with = treatment.metrics().completion_cdf(
        [&](const cdn::FlowRecord& f) {
          return f.src_pop == src && f.object_bytes == size;
        });
    auto all_without = control.metrics().completion_cdf(
        [&](const cdn::FlowRecord& f) {
          return f.src_pop == src && f.object_bytes == size;
        });
    int improved = 0, total = 0;
    if (!all_with.empty() && !all_without.empty()) {
      for (double p = 1; p <= 99; p += 1) {
        ++total;
        if (all_with.percentile(p) < all_without.percentile(p) * 0.95) {
          ++improved;
        }
      }
    }
    std::printf("fraction of distribution improved >5%%: %.0f%%"
                " (paper: 10K ~0%%, 50K ~30%%, 100K ~78%%)\n\n",
                total > 0 ? 100.0 * improved / total : 0.0);
  }
  return 0;
}

// Reproduces paper Table II (PoP count per continent) and Fig 5 (the CDF
// of RTTs between globally deployed datacenters; the paper reports a
// median above 125 ms).

#include <cstdio>

#include "cdn/pops.h"
#include "cdn/topology.h"
#include "sim/simulator.h"
#include "stats/cdf.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace riptide;
  bench::parse_bench_options(argc, argv);

  std::printf("Table II: CDN PoPs with Riptide deployed\n");
  bench::print_rule('-', 40);
  for (const auto& [continent, count] :
       cdn::continent_summary(cdn::default_pop_specs())) {
    std::printf("%-16s %3d\n", cdn::to_string(continent), count);
  }
  std::printf("%-16s %3zu\n", "Total", cdn::default_pop_specs().size());

  sim::Simulator sim;
  cdn::Topology topo(sim, cdn::TopologyConfig{});
  stats::Cdf rtts;
  for (std::size_t a = 0; a < topo.pop_count(); ++a) {
    for (std::size_t b = a + 1; b < topo.pop_count(); ++b) {
      rtts.add(topo.base_rtt(a, b).to_milliseconds());
    }
  }

  std::printf("\nFig 5: RTT between deployed datacenters (all PoP pairs)\n");
  bench::print_rule();
  std::printf("%12s  %10s\n", "percentile", "RTT (ms)");
  for (double p : {5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::printf("%11.0f%%  %10.1f\n", p, rtts.percentile(p));
  }
  bench::print_rule();
  std::printf("median RTT: %.1f ms (paper: >125 ms)\n", rtts.percentile(50));
  std::printf("pairs measured: %zu\n", rtts.count());
  return 0;
}

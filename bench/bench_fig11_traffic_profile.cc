// Reproduces paper Fig 11: observed congestion windows at two datacenters
// running Riptide — one carrying only probe traffic, one additionally
// carrying organic back-office traffic.
//
// Paper shape: the organic-traffic PoP reaches the c_max of 100 for a
// large share of connections (44% in the paper), while the probe-only PoP
// stays below 100 almost everywhere (median 75 in the paper).

#include <cstdio>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "runner/parallel_runner.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace riptide;
  const auto opt = bench::parse_bench_options(argc, argv);

  auto config = bench::paper_world(/*riptide=*/true);
  config.seed = opt.seeds.front();
  const int busy = bench::find_pop(config.pop_specs, "nyc");
  const int quiet = bench::find_pop(config.pop_specs, "sto");
  config.organic_source_pops = {static_cast<std::size_t>(busy)};
  config.organic.mean_interarrival_seconds = 0.1;  // a busy PoP
  config.duration = sim::Time::minutes(4);
  // Sparser probe cadence for this figure: the paper's probe-only PoP is
  // nearly idle between (hourly) probes, which is what keeps its windows
  // below the busy PoP's.
  config.probe.interval = sim::Time::seconds(20);
  config.probe.idle_close = sim::Time::seconds(45);

  auto results = runner::ParallelRunner(opt.threads)
                     .run({runner::RunSpec{"fig11", config, nullptr}});
  const cdn::Experiment& exp = *results.front().experiment;

  const auto busy_cdf = exp.metrics().cwnd_cdf(busy);
  const auto quiet_cdf = exp.metrics().cwnd_cdf(quiet);

  const std::vector<double> percentiles = {10, 25, 50, 75, 90, 99};
  std::printf("Fig 11: congestion windows by traffic profile (segments)\n");
  bench::print_rule();
  bench::print_percentile_header("PoP profile", percentiles);
  bench::print_cdf_row("organic traffic (nyc)", busy_cdf, percentiles);
  bench::print_cdf_row("probe-only (sto)", quiet_cdf, percentiles);
  bench::print_rule();

  const double busy_at_cap =
      1.0 - busy_cdf.fraction_at_or_below(99.0);
  const double quiet_below_cap = quiet_cdf.fraction_at_or_below(99.0);
  std::printf("organic PoP at window >= 100: %.0f%% (paper: 44%%)\n",
              busy_at_cap * 100.0);
  std::printf("probe-only PoP below 100: %.0f%% (paper: 99%%), median %.0f "
              "(paper: 75)\n",
              quiet_below_cap * 100.0, quiet_cdf.percentile(50));
  return 0;
}

// bench_policy_zoo — the "when is jump-starting safe?" matrix.
//
// Runs every point of {initcwnd policy} x {route granularity} x {hostile
// scenario} on one fixed small-world CDN and reports, per point: goodput,
// p50/p99 flow completion time, retransmission pressure, and every
// SafetyGovernor action counter. The matrix is the evidence behind the
// robustness claim: a blind static IW50 wins the benign baseline but loses
// to the governed adaptive policy once the path turns hostile
// (shallow bottleneck queues, synchronized incast, flash crowds), because
// the governor's staged ladder sheds the boost before the loss spiral
// compounds.
//
// Policies (src/policy): static-iw10, static-iw50, adaptive,
// adaptive-governed, oracle. Granularities: /32, /24, /20. Scenarios
// (src/cdn/hostile.h): baseline, shallow-buffer, incast, flash-crowd.
//
// Usage: bench_policy_zoo [--quick] [--json] [--threads N]
//   --quick   shrink durations ~3x for CI smoke (numbers then not
//             comparable with the checked-in BENCH_policy.json)
//   --json    print the machine-readable JSON document on stdout after
//             the human-readable table (redirect as needed)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "cdn/hostile.h"
#include "cdn/pops.h"
#include "policy/policy.h"
#include "runner/parallel_runner.h"
#include "stats/cdf.h"

namespace {

using namespace riptide;
using sim::Time;

struct Scenario {
  const char* name;
  const char* spec;  // parse_hostile_spec grammar; nullptr = baseline
};

// Tuned so the hostile cases bite within a 90 s run: a 24-packet
// bottleneck queue (vs the clean 4096) makes any >IW10 burst overflow on
// the first flight; the incast/crowd waves land hundreds of fresh
// connections inside one RTT.
const Scenario kScenarios[] = {
    {"baseline", nullptr},
    {"shallow-buffer", "shallow-buffer:queue=24"},
    {"incast", "incast:victim=0,fanin=16,burst=1000000,start=10,interval=10"},
    {"flash-crowd",
     "flash-crowd:at=15,conns=24,bytes=500000,repeats=3,period=20"},
};

const char* kPolicies[] = {"static-iw10", "static-iw50", "adaptive",
                           "adaptive-governed", "oracle"};
const int kGranularities[] = {32, 24, 20};

struct Cell {
  std::string policy;
  int granularity = 32;
  std::string scenario;
  double goodput_mbps = 0.0;
  double p50_fct_ms = 0.0;
  double p99_fct_ms = 0.0;
  std::size_t flows = 0;
  std::uint64_t retransmissions = 0;
  double retrans_per_mb = 0.0;
  std::uint64_t rollbacks = 0;
  std::uint64_t stage_scaledowns = 0;
  std::uint64_t stage_withdrawals = 0;
  std::uint64_t budget_sheds = 0;
  std::uint64_t storm_escalations = 0;
};

cdn::ExperimentConfig base_config(bool quick) {
  cdn::ExperimentConfig config;
  const auto& all = cdn::default_pop_specs();
  config.pop_specs.assign(all.begin(), all.begin() + 4);
  config.topology.hosts_per_pop = 2;
  // Constrained WAN under a 10 Gbps LAN: the 20x rate mismatch is what
  // makes an initial-window flight a *burst* at the bottleneck queue. At
  // equal rates the queue drains as fast as it fills and no IW choice can
  // overflow it, hostile or not.
  config.topology.wan_rate_bps = 500e6;
  config.riptide.update_interval = Time::seconds(2);
  config.probe.interval = Time::seconds(2);
  config.organic_source_pops = {0};
  config.duration = quick ? Time::seconds(30) : Time::seconds(90);
  config.cwnd_sample_interval = Time::seconds(15);
  config.seed = 11;
  return config;
}

Cell measure(const runner::RunResult& result, const std::string& policy,
             int granularity, const std::string& scenario) {
  const cdn::Experiment& exp = *result.experiment;
  Cell cell;
  cell.policy = policy;
  cell.granularity = granularity;
  cell.scenario = scenario;

  std::uint64_t bytes = 0;
  for (const auto& flow : exp.metrics().flows()) bytes += flow.object_bytes;
  const double seconds = exp.config().duration.to_seconds();
  cell.goodput_mbps = seconds > 0 ? bytes * 8.0 / seconds / 1e6 : 0.0;

  const auto fct = exp.metrics().completion_cdf(
      [](const cdn::FlowRecord&) { return true; });
  cell.flows = fct.count();
  if (!fct.empty()) {
    cell.p50_fct_ms = fct.percentile(50);
    cell.p99_fct_ms = fct.percentile(99);
  }

  cell.retransmissions = exp.topology().total_retransmissions();
  cell.retrans_per_mb =
      bytes > 0 ? cell.retransmissions / (bytes / 1e6) : 0.0;

  for (const auto& agent : exp.agents()) {
    cell.rollbacks += agent->stats().governor_rollbacks;
    cell.stage_scaledowns += agent->stats().governor_stage_scaledowns;
    cell.stage_withdrawals += agent->stats().governor_stage_withdrawals;
    cell.budget_sheds += agent->stats().governor_budget_sheds;
    cell.storm_escalations += agent->stats().governor_storm_escalations;
  }
  return cell;
}

// With --json the table goes to stderr so stdout stays a valid JSON
// document (ci.sh redirects stdout straight into BENCH_policy.ci.json).
void print_table(std::FILE* out, const std::vector<Cell>& cells) {
  std::fprintf(out, "%-18s %3s %-14s %9s %8s %8s %9s %5s %5s %5s\n",
               "policy", "gran", "scenario", "goodput", "p50ms", "p99ms",
               "rt/MB", "roll", "stage", "shed");
  for (const auto& c : cells) {
    std::fprintf(out,
                 "%-18s %3d %-14s %9.2f %8.1f %8.1f %9.2f %5llu %5llu "
                 "%5llu\n",
                 c.policy.c_str(), c.granularity, c.scenario.c_str(),
                 c.goodput_mbps, c.p50_fct_ms, c.p99_fct_ms,
                 c.retrans_per_mb,
                 static_cast<unsigned long long>(c.rollbacks),
                 static_cast<unsigned long long>(c.stage_scaledowns +
                                                 c.stage_withdrawals),
                 static_cast<unsigned long long>(c.budget_sheds));
  }
}

const Cell* find(const std::vector<Cell>& cells, const std::string& policy,
                 int granularity, const std::string& scenario) {
  for (const auto& c : cells) {
    if (c.policy == policy && c.granularity == granularity &&
        c.scenario == scenario) {
      return &c;
    }
  }
  return nullptr;
}

void print_json(const std::vector<Cell>& cells, bool quick) {
  std::printf("{\n");
  std::printf("  \"pr\": \"hostile-scenario stress suite + initcwnd policy "
              "zoo\",\n");
  std::printf("  \"bench\": \"bench_policy_zoo%s --json (Release)\",\n",
              quick ? " --quick" : "");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"workload\": \"4 PoPs x 2 hosts, probe mesh at 2 s "
              "cadence, organic traffic on PoP 0, %s simulated, seed 11; "
              "hostile scenarios per src/cdn/hostile.h with the specs "
              "recorded below\",\n",
              quick ? "30 s" : "90 s");
  std::printf("  \"scenario_specs\": {");
  bool first = true;
  for (const auto& s : kScenarios) {
    if (s.spec == nullptr) continue;
    std::printf("%s\"%s\": \"%s\"", first ? "" : ", ", s.name, s.spec);
    first = false;
  }
  std::printf("},\n");
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::printf(
        "    {\"policy\": \"%s\", \"granularity\": %d, \"scenario\": "
        "\"%s\", \"goodput_mbps\": %.3f, \"p50_fct_ms\": %.2f, "
        "\"p99_fct_ms\": %.2f, \"flows\": %zu, \"retransmissions\": %llu, "
        "\"retrans_per_mb\": %.3f, \"rollbacks\": %llu, "
        "\"stage_scaledowns\": %llu, \"stage_withdrawals\": %llu, "
        "\"budget_sheds\": %llu, \"storm_escalations\": %llu}%s\n",
        c.policy.c_str(), c.granularity, c.scenario.c_str(), c.goodput_mbps,
        c.p50_fct_ms, c.p99_fct_ms, c.flows,
        static_cast<unsigned long long>(c.retransmissions), c.retrans_per_mb,
        static_cast<unsigned long long>(c.rollbacks),
        static_cast<unsigned long long>(c.stage_scaledowns),
        static_cast<unsigned long long>(c.stage_withdrawals),
        static_cast<unsigned long long>(c.budget_sheds),
        static_cast<unsigned long long>(c.storm_escalations),
        i + 1 < cells.size() ? "," : "");
  }
  std::printf("  ],\n");

  // The headline comparison the robustness claim rests on: blind IW50 vs
  // the governed adaptive agent, both at host granularity, on each
  // hostile scenario.
  std::printf("  \"headline\": [\n");
  bool first_row = true;
  for (const auto& s : kScenarios) {
    if (s.spec == nullptr) continue;
    const Cell* iw50 = find(cells, "static-iw50", 32, s.name);
    const Cell* governed = find(cells, "adaptive-governed", 32, s.name);
    if (iw50 == nullptr || governed == nullptr) continue;
    const bool governed_wins = governed->p99_fct_ms < iw50->p99_fct_ms &&
                               governed->goodput_mbps >= iw50->goodput_mbps;
    std::printf(
        "    %s{\"scenario\": \"%s\", \"iw50_p99_fct_ms\": %.2f, "
        "\"governed_p99_fct_ms\": %.2f, \"iw50_goodput_mbps\": %.3f, "
        "\"governed_goodput_mbps\": %.3f, \"governed_wins\": %s}",
        first_row ? "" : ",\n", s.name, iw50->p99_fct_ms,
        governed->p99_fct_ms, iw50->goodput_mbps, governed->goodput_mbps,
        governed_wins ? "true" : "false");
    first_row = false;
  }
  std::printf("\n  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json] [--threads N]\n", argv[0]);
      return 2;
    }
  }

#ifndef NDEBUG
  std::fprintf(stderr,
               "bench_policy_zoo: assertions enabled; use a Release build "
               "for meaningful numbers\n");
#endif

  std::vector<runner::RunSpec> specs;
  struct Point {
    std::string policy;
    int granularity;
    std::string scenario;
  };
  std::vector<Point> points;
  for (const char* policy : kPolicies) {
    for (int granularity : kGranularities) {
      for (const auto& scenario : kScenarios) {
        const std::string name =
            granularity == 32
                ? std::string(policy)
                : std::string(policy) + "@" + std::to_string(granularity);
        cdn::ExperimentConfig config = base_config(quick);
        if (scenario.spec != nullptr) {
          config.hostile = cdn::parse_hostile_spec(scenario.spec);
          if (config.hostile.kind == cdn::HostileKind::kShallowBuffer ||
              config.hostile.kind == cdn::HostileKind::kCombined) {
            config.topology.wan_queue_packets = config.hostile.queue_packets;
          }
        }
        policy::apply_policy(config, policy::parse_policy(name));
        runner::RunSpec spec;
        spec.label = name + "/" + scenario.name;
        spec.config = std::move(config);
        specs.push_back(std::move(spec));
        points.push_back(Point{policy, granularity, scenario.name});
      }
    }
  }

  std::fprintf(stderr, "bench_policy_zoo: %zu runs (%s)...\n", specs.size(),
               quick ? "quick" : "full");
  const auto results = runner::ParallelRunner(threads).run(std::move(specs));

  std::vector<Cell> cells;
  cells.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    cells.push_back(measure(results[i], points[i].policy,
                            points[i].granularity, points[i].scenario));
  }

  print_table(json ? stderr : stdout, cells);
  if (json) print_json(cells, quick);
  return 0;
}

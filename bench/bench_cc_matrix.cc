// CC-regime matrix: does Riptide's jump-start still pay off when the
// congestion controller is smarter than stock slow-start?
//
// For each regime in {reno, cubic, cubic-fast (HyStart + pacing), bbr
// (BBR-lite + pacing)} this runs the Fig 15/16 percentile harness as a
// treatment/control sweep (riptide on vs off, same seeds), then prints
// the fraction-of-gain-by-percentile tables from the European (lon) PoP
// and a p50/p90/p95 headline per regime.
//
// The question the matrix answers: HyStart and BBR shorten slow-start on
// their own, so how much of the paper's upper-percentile win survives
// once the baseline controller is no longer the bottleneck? (Answer from
// the checked-in BENCH_cc.json: most of it — jump-start removes the
// first-RTT probing that even BBR's STARTUP must pay, so gains compress
// but do not vanish.)
//
// --quick shrinks the simulated window for CI smoke runs; quick numbers
// are marked in the JSON and are not comparable with full runs.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cdn/experiment.h"
#include "runner/parallel_runner.h"
#include "runner/sweep.h"
#include "runner/task_pool.h"
#include "stats/perf.h"
#include "tcp/config.h"

using namespace riptide;

namespace {

struct Regime {
  const char* name;
  tcp::RouteCc cc;
};

constexpr Regime kRegimes[] = {
    {"reno", tcp::RouteCc::kReno},
    {"cubic", tcp::RouteCc::kCubic},
    {"cubic-fast", tcp::RouteCc::kCubicFast},
    {"bbr", tcp::RouteCc::kBbrLite},
};

// Merged completion-time CDF (ms) across all seeds of one sweep arm.
stats::Cdf merged_cdf(const std::vector<const cdn::Experiment*>& runs,
                      int src, std::uint64_t size, int dst) {
  stats::Cdf merged;
  for (const cdn::Experiment* run : runs) {
    merged.add_all(run->probe_cdf(src, size, dst).sorted_samples());
  }
  return merged;
}

// Per-destination percentile gains averaged across destinations (the
// paper's Fig 15/16 view), keyed by percentile.
std::map<double, double> gain_by_percentile(
    const std::vector<const cdn::Experiment*>& treatment,
    const std::vector<const cdn::Experiment*>& control, int src,
    std::uint64_t size, std::size_t pop_count) {
  std::map<double, std::pair<double, int>> accum;  // pct -> (sum, n)
  for (std::size_t dst = 0; dst < pop_count; ++dst) {
    if (static_cast<int>(dst) == src) continue;
    const auto with = merged_cdf(treatment, src, size, static_cast<int>(dst));
    const auto without = merged_cdf(control, src, size, static_cast<int>(dst));
    if (with.count() < 10 || without.count() < 10) continue;
    for (const auto& gain : cdn::percentile_gains(without, with, 5.0)) {
      auto& slot = accum[gain.percentile];
      slot.first += gain.gain_fraction;
      ++slot.second;
    }
  }
  std::map<double, double> averaged;
  for (const auto& [pct, slot] : accum) {
    averaged[pct] = slot.second > 0 ? slot.first / slot.second : 0.0;
  }
  return averaged;
}

// With --json the tables go to stderr so stdout stays valid JSONL for
// tools/bench_diff.py (the bench_policy_zoo convention).
void print_gain_table(std::FILE* out, const std::map<double, double>& gains) {
  std::fprintf(out, "%-12s", "percentile:");
  for (const auto& [pct, _] : gains) std::fprintf(out, " %5.0f", pct);
  std::fprintf(out, "\n%-12s", "gain %:");
  for (const auto& [_, g] : gains) std::fprintf(out, " %5.1f", 100.0 * g);
  std::fprintf(out, "\n");
}

double gain_at(const std::map<double, double>& gains, double pct) {
  const auto it = gains.find(pct);
  return it == gains.end() ? 0.0 : 100.0 * it->second;
}

// Pooled completion-time CDF over every destination from src (for the
// absolute-ms columns in the JSON record).
stats::Cdf pooled_cdf(const std::vector<const cdn::Experiment*>& runs,
                      int src, std::uint64_t size, std::size_t pop_count) {
  stats::Cdf pooled;
  for (std::size_t dst = 0; dst < pop_count; ++dst) {
    if (static_cast<int>(dst) == src) continue;
    for (const cdn::Experiment* run : runs) {
      pooled.add_all(
          run->probe_cdf(src, size, static_cast<int>(dst)).sorted_samples());
    }
  }
  return pooled;
}

std::uint64_t total_retransmissions(
    const std::vector<const cdn::Experiment*>& runs) {
  std::uint64_t total = 0;
  for (const cdn::Experiment* run : runs) {
    total += run->topology().total_retransmissions();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick is matrix-specific; strip it before the shared parser sees it.
  bool quick = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const auto opt = bench::parse_bench_options(static_cast<int>(args.size()),
                                              args.data());
  std::FILE* hum = opt.json ? stderr : stdout;

  const sim::Time window =
      quick ? sim::Time::seconds(60) : sim::Time::minutes(3);

  struct RegimeResult {
    std::string name;
    // size -> averaged gain-by-percentile map
    std::map<std::uint64_t, std::map<double, double>> gains;
    std::map<std::uint64_t, stats::Cdf> pooled_with, pooled_without;
    std::uint64_t retx_with = 0, retx_without = 0;
    std::size_t runs = 0;
  };
  std::vector<RegimeResult> summary;

  const runner::ParallelRunner pool(opt.threads);
  const auto sweep_start = std::chrono::steady_clock::now();
  double sum_run_seconds = 0.0;
  std::size_t total_runs = 0;

  for (const Regime& regime : kRegimes) {
    auto base = bench::paper_world(/*riptide=*/true);
    base.duration = window;
    bench::apply_trace(base, opt);
    // Host-wide regime for every connection in the world, exactly what a
    // fleet-wide `--cc` rollout or a `default,cc=` policy would install.
    tcp::apply_route_cc(regime.cc, base.topology.host_tcp);

    auto specs = runner::SweepSpec(base)
                     .seeds(opt.seeds)
                     .treatment_control()
                     .materialize();
    const auto results = pool.run(std::move(specs));

    // Expansion order is seed-major with treatment before control.
    std::vector<const cdn::Experiment*> treatment, control;
    for (const auto& result : results) {
      sum_run_seconds += result.wall_seconds;
      (result.index % 2 == 0 ? treatment : control)
          .push_back(result.experiment.get());
    }
    total_runs += results.size();

    const std::size_t pops = treatment.front()->topology().pop_count();
    const int eu = bench::find_pop(base.pop_specs, "lon");

    RegimeResult& out = summary.emplace_back();
    out.name = regime.name;
    out.runs = results.size();
    out.retx_with = total_retransmissions(treatment);
    out.retx_without = total_retransmissions(control);

    std::fprintf(hum,
                 "=== regime %s (riptide on vs off, %zu seed(s), %s window) "
                 "===\n",
                 regime.name, opt.seeds.size(), quick ? "quick" : "full");
    for (std::uint64_t size : {50'000u, 100'000u}) {
      out.gains[size] = gain_by_percentile(treatment, control, eu, size, pops);
      out.pooled_with[size] = pooled_cdf(treatment, eu, size, pops);
      out.pooled_without[size] = pooled_cdf(control, eu, size, pops);
      std::fprintf(hum,
                   "%llu KB probes from lon, averaged across destinations:\n",
                   static_cast<unsigned long long>(size / 1000));
      print_gain_table(hum, out.gains[size]);
    }
    std::fprintf(hum, "\n");
  }

  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  // Headline: what jump-start is still worth under each controller.
  for (int i = 0; i < 100; ++i) std::fputc('-', hum);
  std::fputc('\n', hum);
  std::fprintf(hum,
               "jump-start gain (completion-time reduction, 50 KB, lon):\n");
  std::fprintf(hum, "%-12s %8s %8s %8s   %s\n", "regime", "p50", "p90", "p95",
               "p90 ms without -> with riptide");
  for (const auto& r : summary) {
    const auto& g = r.gains.at(50'000u);
    std::fprintf(hum, "%-12s %7.1f%% %7.1f%% %7.1f%%   %.1f -> %.1f\n",
                 r.name.c_str(), gain_at(g, 50.0), gain_at(g, 90.0),
                 gain_at(g, 95.0),
                 r.pooled_without.at(50'000u).percentile(90.0),
                 r.pooled_with.at(50'000u).percentile(90.0));
  }
  std::fprintf(hum,
               "sweep: %zu runs on %u worker(s): %.2f s wall, %.2f s summed "
               "run time\n",
               total_runs, runner::effective_threads(opt.threads, total_runs),
               sweep_seconds, sum_run_seconds);

  if (opt.json) {
    // One line per regime x probe size, keyed by "workload" so
    // tools/bench_diff.py pairs the same cell across captures.
    for (const auto& r : summary) {
      for (std::uint64_t size : {50'000u, 100'000u}) {
        const auto& g = r.gains.at(size);
        const auto& with = r.pooled_with.at(size);
        const auto& without = r.pooled_without.at(size);
        std::printf(
            "{\"bench\":\"cc_matrix\",\"workload\":\"%s/%lluKB\","
            "\"quick\":%s,\"seeds\":%zu,"
            "\"gain_pct\":{\"p50\":%.2f,\"p75\":%.2f,\"p90\":%.2f,"
            "\"p95\":%.2f},"
            "\"without_ms\":{\"p50\":%.2f,\"p90\":%.2f,\"p99\":%.2f},"
            "\"with_ms\":{\"p50\":%.2f,\"p90\":%.2f,\"p99\":%.2f},"
            "\"retx_without\":%llu,\"retx_with\":%llu}\n",
            r.name.c_str(), static_cast<unsigned long long>(size / 1000),
            quick ? "true" : "false", opt.seeds.size(), gain_at(g, 50.0),
            gain_at(g, 75.0), gain_at(g, 90.0), gain_at(g, 95.0),
            without.percentile(50.0), without.percentile(90.0),
            without.percentile(99.0), with.percentile(50.0),
            with.percentile(90.0), with.percentile(99.0),
            static_cast<unsigned long long>(r.retx_without),
            static_cast<unsigned long long>(r.retx_with));
      }
    }
    std::printf("{\"bench\":\"cc_matrix\",\"workload\":\"sweep\","
                "\"runs\":%zu,\"threads\":%u,\"wall_seconds\":%.3f,"
                "\"sum_run_seconds\":%.3f}\n",
                total_runs,
                runner::effective_threads(opt.threads, total_runs),
                sweep_seconds, sum_run_seconds);
  }
  return 0;
}

// Reproduces paper Fig 6: the distribution of total transfer time for a
// 100 KB file under initcwnd 10/25/50/100, applying the §II-B transfer
// model to the inter-PoP RTT distribution of Fig 5.
//
// Paper shape: at the median the IW10 case is ~280 ms slower than IW100;
// at the 90th percentile the difference is ~290 ms (~100%).

#include <cstdio>
#include <vector>

#include "cdn/topology.h"
#include "model/transfer_model.h"
#include "runner/task_pool.h"
#include "sim/simulator.h"
#include "stats/cdf.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace riptide;
  const auto opt = bench::parse_bench_options(argc, argv);

  sim::Simulator sim;
  cdn::Topology topo(sim, cdn::TopologyConfig{});
  std::vector<sim::Time> rtts;
  for (std::size_t a = 0; a < topo.pop_count(); ++a) {
    for (std::size_t b = 0; b < topo.pop_count(); ++b) {
      if (a != b) rtts.push_back(topo.base_rtt(a, b));
    }
  }

  const std::uint64_t size = 100'000;
  const std::vector<std::uint32_t> windows = {10, 25, 50, 100};
  const std::vector<double> percentiles = {10, 25, 50, 75, 90, 99};

  std::printf("Fig 6: total transfer time for a 100 KB file (model x Fig 5 "
              "RTTs), ms\n");
  bench::print_rule();
  bench::print_percentile_header("initcwnd", percentiles);

  // One independent model pass per initcwnd, fanned across workers.
  const auto cdfs = runner::parallel_map<stats::Cdf>(
      opt.threads, windows.size(), [&](std::size_t i) {
        model::ModelParams params{1460, windows[i]};
        stats::Cdf cdf;
        for (const auto rtt : rtts) {
          cdf.add(model::transfer_time(size, params, rtt).to_milliseconds());
        }
        return cdf;
      });
  for (std::size_t i = 0; i < windows.size(); ++i) {
    bench::print_cdf_row("iw=" + std::to_string(windows[i]), cdfs[i],
                         percentiles);
  }

  bench::print_rule();
  std::printf("median penalty of iw10 vs iw100: %.0f ms (paper: ~280 ms)\n",
              cdfs[0].percentile(50) - cdfs[3].percentile(50));
  std::printf("p90 penalty of iw10 vs iw100: %.0f ms, +%.0f%% (paper: "
              "~290 ms, ~100%%)\n",
              cdfs[0].percentile(90) - cdfs[3].percentile(90),
              (cdfs[0].percentile(90) / cdfs[3].percentile(90) - 1.0) * 100.0);
  return 0;
}

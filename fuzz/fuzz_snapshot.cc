// libFuzzer target for the snapshot decoder: arbitrary bytes must decode
// to either a clean rejection or a table of CRC-verified records — never
// crash, hang, or trip a sanitizer. Whenever the input decodes, the
// recovered table must itself round-trip: re-encoding and re-decoding what
// survived is a fixed point of the codec.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "persist/snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using riptide::persist::decode_snapshot;
  using riptide::persist::encode_snapshot;

  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const auto decoded = decode_snapshot(bytes);
  if (!decoded.valid) return 0;

  const auto reencoded =
      encode_snapshot(decoded.table, decoded.counters, decoded.sequence);
  const auto redecoded = decode_snapshot(reencoded);
  if (!redecoded.valid || !(redecoded.table == decoded.table) ||
      !(redecoded.counters == decoded.counters)) {
    __builtin_trap();  // codec fixed-point violated
  }
  return 0;
}

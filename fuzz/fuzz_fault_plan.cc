// libFuzzer target for the FaultPlan spec grammar: every input either
// parses into a plan or is rejected with std::invalid_argument — any
// other escape (crash, different exception type, runaway allocation) is
// a finding.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "faults/fault_plan.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Grammar inputs are short command lines; huge inputs only slow the
  // fuzzer down without reaching new states.
  if (size > 4096) return 0;
  const std::string spec(reinterpret_cast<const char*>(data), size);
  try {
    const auto plan = riptide::faults::FaultPlan::parse(spec);
    (void)plan.size();
  } catch (const std::invalid_argument&) {
    // The documented rejection path.
  }
  return 0;
}

// libFuzzer target for the `ss` text parser: a monitoring agent reads
// this format from a pipe, so arbitrary garbage must be skipped, never
// thrown on or crashed over. Parsed lines are pushed back through the
// formatter to exercise the printer on attacker-shaped field values too.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "host/host.h"
#include "host/ss_format.h"
#include "sim/time.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const auto parsed = riptide::host::parse_socket_stats(text);

  std::vector<riptide::host::SocketInfo> infos;
  infos.reserve(parsed.size());
  for (const auto& p : parsed) {
    riptide::host::SocketInfo info;
    info.state = p.state;
    info.tuple.local_addr = p.local_addr;
    info.tuple.local_port = p.local_port;
    info.tuple.remote_addr = p.remote_addr;
    info.tuple.remote_port = p.remote_port;
    info.cwnd_segments = p.cwnd_segments;
    info.bytes_acked = p.bytes_acked;
    if (p.rtt_ms >= 0.0) {
      info.srtt = riptide::sim::Time::from_milliseconds(p.rtt_ms);
    }
    info.bytes_in_flight = p.bytes_in_flight;
    info.retransmissions = p.retransmissions;
    info.segments_sent = p.segments_sent;
    infos.push_back(info);
  }
  (void)riptide::host::format_socket_stats(infos);
  return 0;
}

// libFuzzer target for the two user-facing config grammars added with the
// policy zoo: the hostile-scenario spec (parse_hostile_spec) and the
// initcwnd policy name (parse_policy). Every input either parses or is
// rejected with std::invalid_argument — any other escape (crash, another
// exception type, runaway allocation) is a finding.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "cdn/hostile.h"
#include "policy/policy.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Both grammars are short command-line tokens; huge inputs only slow
  // the fuzzer down without reaching new states.
  if (size > 1024) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const auto hostile = riptide::cdn::parse_hostile_spec(text);
    (void)hostile.kind;
  } catch (const std::invalid_argument&) {
    // The documented rejection path.
  }
  try {
    const auto policy = riptide::policy::parse_policy(text);
    // A successful parse must round-trip through its canonical name.
    if (riptide::policy::parse_policy(riptide::policy::to_string(policy))
            .kind != policy.kind) {
      __builtin_trap();
    }
  } catch (const std::invalid_argument&) {
  }
  return 0;
}

// libFuzzer target for the chaos spec grammar: every input either parses
// into a ChaosSpec or is rejected with std::invalid_argument — any other
// escape (crash, different exception type, runaway allocation) is a
// finding. Accepted specs must additionally survive the canonical
// round-trip the shrinker and repro files depend on:
// parse(to_string(spec)) == spec.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "chaos/spec.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Spec files are a dozen short lines; huge inputs only slow the fuzzer
  // down without reaching new states.
  if (size > 8192) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const auto spec = riptide::chaos::ChaosSpec::parse(text);
    const std::string canonical = spec.to_string();
    const auto reparsed = riptide::chaos::ChaosSpec::parse(canonical);
    assert(spec == reparsed);
    assert(canonical == reparsed.to_string());
  } catch (const std::invalid_argument&) {
    // The documented rejection path.
  }
  return 0;
}
